// Package nn is a from-scratch neural-network library sufficient to
// reproduce the paper's micro models: stacked LSTM layers (Hochreiter &
// Schmidhuber) feeding two fully connected heads — one predicting packet
// drop (binary cross-entropy on a logit) and one predicting latency (mean
// squared error) — trained jointly with truncated backpropagation through
// time and SGD with momentum, exactly the setup of §4.2 ("The
// multi-dimensional hidden state output from the LSTM is given to one fully
// connected layer to predict the latency and another ... to predict packet
// drop").
//
// The paper used PyTorch 0.4 via ATEN; this package is the pure-Go
// substitution. It trades GPU throughput for zero dependencies: the math is
// identical (same gates, same losses, same optimizer), only slower, so model
// sizes are configuration knobs rather than constants.
package nn

import (
	"math"

	"approxsim/internal/rng"
)

// tanh is a Padé(7,6) approximation of math.Tanh, clamped outside ~|x|>4.97
// where the true function is within 1e-4 of ±1. It is ~5x faster than the
// stdlib and smooth, which matters twice: activation evaluation dominates
// inference cost (hundreds of gate activations per packet prediction), and
// training back-propagates through the same approximation so gradients stay
// exactly consistent with the forward pass.
func tanh(x float64) float64 {
	if x > 4.97 {
		return 1
	}
	if x < -4.97 {
		return -1
	}
	x2 := x * x
	a := x * (135135 + x2*(17325+x2*(378+x2)))
	b := 135135 + x2*(62370+x2*(3150+x2*28))
	return a / b
}

// sigmoid is the logistic function, expressed through tanh so it shares the
// fast approximation: sigma(x) = (1 + tanh(x/2)) / 2.
func sigmoid(x float64) float64 {
	return 0.5 + 0.5*tanh(0.5*x)
}

// dot is an unrolled dot product with a bounds-check hint; the row length
// always equals len(x) by construction.
func dot(row, x []float64) float64 {
	row = row[:len(x)]
	var s0, s1 float64
	i := 0
	for ; i+1 < len(x); i += 2 {
		s0 += row[i] * x[i]
		s1 += row[i+1] * x[i+1]
	}
	if i < len(x) {
		s0 += row[i] * x[i]
	}
	return s0 + s1
}

// Dense is a fully connected layer y = Wx + b.
type Dense struct {
	In, Out int
	W       []float64 // Out x In, row-major
	B       []float64 // Out

	dW, dB []float64
}

// NewDense creates a dense layer with Xavier/Glorot-uniform weights.
func NewDense(in, out int, src *rng.Source) *Dense {
	d := &Dense{
		In: in, Out: out,
		W: make([]float64, out*in), B: make([]float64, out),
		dW: make([]float64, out*in), dB: make([]float64, out),
	}
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range d.W {
		d.W[i] = (2*src.Float64() - 1) * limit
	}
	return d
}

// Forward computes y = Wx + b into a fresh slice.
func (d *Dense) Forward(x []float64) []float64 {
	y := make([]float64, d.Out)
	for o := 0; o < d.Out; o++ {
		sum := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		y[o] = sum
	}
	return y
}

// Backward accumulates gradients given dy and the cached input x, and
// returns dx.
func (d *Dense) Backward(x, dy []float64) []float64 {
	dx := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := dy[o]
		d.dB[o] += g
		row := d.W[o*d.In : (o+1)*d.In]
		grow := d.dW[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			grow[i] += g * xi
			dx[i] += row[i] * g
		}
	}
	return dx
}

// lstmLayer is one LSTM layer. Weight rows are gate-major in the order
// input (i), forget (f), candidate (g), output (o).
type lstmLayer struct {
	In, Hidden int
	Wx         []float64 // 4H x In
	Wh         []float64 // 4H x H
	B          []float64 // 4H

	dWx, dWh, dB []float64
}

func newLSTMLayer(in, hidden int, src *rng.Source) *lstmLayer {
	l := &lstmLayer{
		In: in, Hidden: hidden,
		Wx: make([]float64, 4*hidden*in),
		Wh: make([]float64, 4*hidden*hidden),
		B:  make([]float64, 4*hidden),

		dWx: make([]float64, 4*hidden*in),
		dWh: make([]float64, 4*hidden*hidden),
		dB:  make([]float64, 4*hidden),
	}
	limX := math.Sqrt(6.0 / float64(in+hidden))
	for i := range l.Wx {
		l.Wx[i] = (2*src.Float64() - 1) * limX
	}
	limH := math.Sqrt(6.0 / float64(2*hidden))
	for i := range l.Wh {
		l.Wh[i] = (2*src.Float64() - 1) * limH
	}
	// Forget-gate bias starts at 1: the standard trick that lets gradients
	// flow early in training.
	for h := 0; h < hidden; h++ {
		l.B[hidden+h] = 1
	}
	return l
}

// stepCache holds the activations one forward step needs for backprop.
type stepCache struct {
	x, hPrev, cPrev []float64
	i, f, g, o      []float64 // post-activation gates
	c, tanhC        []float64
}

// forward computes one timestep. hPrev/cPrev are the layer's previous
// hidden/cell state; returns h, c and the cache.
func (l *lstmLayer) forward(x, hPrev, cPrev []float64) ([]float64, []float64, *stepCache) {
	H := l.Hidden
	z := make([]float64, 4*H)
	for r := 0; r < 4*H; r++ {
		z[r] = l.B[r] + dot(l.Wx[r*l.In:(r+1)*l.In], x) +
			dot(l.Wh[r*H:(r+1)*H], hPrev)
	}
	cache := &stepCache{
		x: x, hPrev: hPrev, cPrev: cPrev,
		i: make([]float64, H), f: make([]float64, H),
		g: make([]float64, H), o: make([]float64, H),
		c: make([]float64, H), tanhC: make([]float64, H),
	}
	h := make([]float64, H)
	for j := 0; j < H; j++ {
		cache.i[j] = sigmoid(z[j])
		cache.f[j] = sigmoid(z[H+j])
		cache.g[j] = tanh(z[2*H+j])
		cache.o[j] = sigmoid(z[3*H+j])
		cache.c[j] = cache.f[j]*cPrev[j] + cache.i[j]*cache.g[j]
		cache.tanhC[j] = tanh(cache.c[j])
		h[j] = cache.o[j] * cache.tanhC[j]
	}
	return h, cache.c, cache
}

// backward consumes dh and dc for this step, accumulates weight gradients,
// and returns (dx, dhPrev, dcPrev).
func (l *lstmLayer) backward(cache *stepCache, dh, dc []float64) (dx, dhPrev, dcPrev []float64) {
	H := l.Hidden
	dz := make([]float64, 4*H)
	dcPrev = make([]float64, H)
	for j := 0; j < H; j++ {
		do := dh[j] * cache.tanhC[j]
		dct := dc[j] + dh[j]*cache.o[j]*(1-cache.tanhC[j]*cache.tanhC[j])
		di := dct * cache.g[j]
		df := dct * cache.cPrev[j]
		dg := dct * cache.i[j]
		dcPrev[j] = dct * cache.f[j]

		dz[j] = di * cache.i[j] * (1 - cache.i[j])
		dz[H+j] = df * cache.f[j] * (1 - cache.f[j])
		dz[2*H+j] = dg * (1 - cache.g[j]*cache.g[j])
		dz[3*H+j] = do * cache.o[j] * (1 - cache.o[j])
	}
	dx = make([]float64, l.In)
	dhPrev = make([]float64, H)
	for r := 0; r < 4*H; r++ {
		g := dz[r]
		if g == 0 {
			continue
		}
		l.dB[r] += g
		rowX := l.Wx[r*l.In : (r+1)*l.In]
		growX := l.dWx[r*l.In : (r+1)*l.In]
		for i, xi := range cache.x {
			growX[i] += g * xi
			dx[i] += rowX[i] * g
		}
		rowH := l.Wh[r*H : (r+1)*H]
		growH := l.dWh[r*H : (r+1)*H]
		for i, hi := range cache.hPrev {
			growH[i] += g * hi
			dhPrev[i] += rowH[i] * g
		}
	}
	return dx, dhPrev, dcPrev
}

// Model is the paper's micro-model architecture: a stacked LSTM whose final
// hidden state feeds a drop head (1 logit) and a latency head (1 value).
type Model struct {
	InDim, Hidden, Layers int
	lstm                  []*lstmLayer
	DropHead              *Dense
	LatHead               *Dense
}

// NewModel builds a model with the given input width, hidden size, and
// number of stacked LSTM layers. The paper's prototype is layers=2,
// hidden=128 (§7); tests use smaller sizes.
func NewModel(inDim, hidden, layers int, src *rng.Source) *Model {
	if inDim <= 0 || hidden <= 0 || layers <= 0 {
		panic("nn: model dimensions must be positive")
	}
	m := &Model{InDim: inDim, Hidden: hidden, Layers: layers}
	for l := 0; l < layers; l++ {
		in := inDim
		if l > 0 {
			in = hidden
		}
		m.lstm = append(m.lstm, newLSTMLayer(in, hidden, src))
	}
	m.DropHead = NewDense(hidden, 1, src)
	m.LatHead = NewDense(hidden, 1, src)
	return m
}

// State is the recurrent state of a Model mid-sequence, plus the scratch
// space that keeps inference allocation-free (every boundary packet in a
// hybrid simulation costs one Predict, so this path is hot).
type State struct {
	h, c [][]float64
	z    []float64 // gate pre-activation scratch, 4*Hidden
}

// NewState returns zeroed recurrent state.
func (m *Model) NewState() *State {
	st := &State{z: make([]float64, 4*m.Hidden)}
	for l := 0; l < m.Layers; l++ {
		st.h = append(st.h, make([]float64, m.Hidden))
		st.c = append(st.c, make([]float64, m.Hidden))
	}
	return st
}

// inferStep advances one layer in place: reads x and the old (h, c), writes
// the new (h, c). z is caller scratch of size >= 4*Hidden. The gate math is
// identical to forward; only the caching for backprop is omitted.
func (l *lstmLayer) inferStep(x, h, c, z []float64) {
	H := l.Hidden
	// All of z depends only on the OLD h, so compute it fully before
	// mutating h below.
	for r := 0; r < 4*H; r++ {
		z[r] = l.B[r] + dot(l.Wx[r*l.In:(r+1)*l.In], x) +
			dot(l.Wh[r*H:(r+1)*H], h)
	}
	for j := 0; j < H; j++ {
		ig := sigmoid(z[j])
		fg := sigmoid(z[H+j])
		gg := tanh(z[2*H+j])
		og := sigmoid(z[3*H+j])
		c[j] = fg*c[j] + ig*gg
		h[j] = og * tanh(c[j])
	}
}

// Predict runs one input through the model, updating st in place, and
// returns the drop probability and the raw latency-head output. It performs
// no heap allocation.
func (m *Model) Predict(x []float64, st *State) (dropProb, latency float64) {
	cur := x
	for l, layer := range m.lstm {
		layer.inferStep(cur, st.h[l], st.c[l], st.z)
		cur = st.h[l]
	}
	return sigmoid(m.DropHead.forward1(cur)), m.LatHead.forward1(cur)
}

// forward1 is Forward for the common Out==1 head, without allocating.
func (d *Dense) forward1(x []float64) float64 {
	return d.B[0] + dot(d.W, x)
}

// params enumerates every (weights, grads) pair for the optimizer.
func (m *Model) params() [][2][]float64 {
	var ps [][2][]float64
	for _, l := range m.lstm {
		ps = append(ps,
			[2][]float64{l.Wx, l.dWx},
			[2][]float64{l.Wh, l.dWh},
			[2][]float64{l.B, l.dB})
	}
	ps = append(ps,
		[2][]float64{m.DropHead.W, m.DropHead.dW},
		[2][]float64{m.DropHead.B, m.DropHead.dB},
		[2][]float64{m.LatHead.W, m.LatHead.dW},
		[2][]float64{m.LatHead.B, m.LatHead.dB})
	return ps
}

// zeroGrads clears all accumulated gradients.
func (m *Model) zeroGrads() {
	for _, p := range m.params() {
		g := p[1]
		for i := range g {
			g[i] = 0
		}
	}
}

// NumParams returns the trainable parameter count.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.params() {
		n += len(p[0])
	}
	return n
}
