package nn

import (
	"fmt"
	"math"

	"approxsim/internal/rng"
)

// Example is one timestep of training data: an input feature vector and the
// joint label (was the packet dropped; if not, its normalized latency).
type Example struct {
	X       []float64
	Dropped bool
	Latency float64 // normalized; ignored when Dropped (no latency exists)
}

// TrainConfig mirrors the paper's training setup (§4.2): SGD with momentum
// (lr 1e-4, momentum 0.9), batches of windows, joint loss
// L = L_drop + Alpha * L_latency with the latency term masked on drops.
type TrainConfig struct {
	LR       float64 // default 0.0001 (paper)
	Momentum float64 // default 0.9 (paper)
	Alpha    float64 // default 0.5; paper: 0 < alpha <= 1
	Batches  int     // gradient steps (paper: >50,000; tests use far fewer)
	Batch    int     // windows per batch (paper: 64)
	BPTT     int     // window length for truncated BPTT (default 16)
	Clip     float64 // global-norm gradient clip (default 1.0; 0 disables)
	Seed     uint64
	// ValFraction holds out the last fraction of the data as a validation
	// stream (never sampled for training windows). 0 disables validation.
	ValFraction float64
	// Patience stops training early after this many consecutive validation
	// checks (one every Batches/10 steps) without improvement. 0 disables
	// early stopping. Requires ValFraction > 0.
	Patience int
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.LR == 0 {
		c.LR = 1e-4
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	if c.Alpha == 0 {
		c.Alpha = 0.5
	}
	if c.Batches == 0 {
		c.Batches = 200
	}
	if c.Batch == 0 {
		c.Batch = 64
	}
	if c.BPTT == 0 {
		c.BPTT = 16
	}
	if c.Clip == 0 {
		c.Clip = 1.0
	}
	return c
}

// TrainStats summarizes a training run.
type TrainStats struct {
	Batches   int     // batches actually executed (<= configured on early stop)
	FirstLoss float64 // mean loss over the first 10% of batches
	LastLoss  float64 // mean loss over the last 10% of batches
	ValLoss   float64 // final validation loss (0 when validation disabled)
	Stopped   bool    // true if early stopping triggered
}

// sgd is the momentum optimizer state.
type sgd struct {
	lr, mu float64
	vel    [][]float64
}

func newSGD(m *Model, lr, mu float64) *sgd {
	o := &sgd{lr: lr, mu: mu}
	for _, p := range m.params() {
		o.vel = append(o.vel, make([]float64, len(p[0])))
	}
	return o
}

func (o *sgd) step(m *Model, scale float64) {
	for pi, p := range m.params() {
		w, g, v := p[0], p[1], o.vel[pi]
		for i := range w {
			v[i] = o.mu*v[i] - o.lr*g[i]*scale
			w[i] += v[i]
		}
	}
}

// clipGrads rescales all gradients to a maximum global L2 norm.
func clipGrads(m *Model, maxNorm, scale float64) {
	var sq float64
	for _, p := range m.params() {
		for _, g := range p[1] {
			gg := g * scale
			sq += gg * gg
		}
	}
	norm := math.Sqrt(sq)
	if norm <= maxNorm {
		return
	}
	f := maxNorm / norm
	for _, p := range m.params() {
		g := p[1]
		for i := range g {
			g[i] *= f
		}
	}
}

// Train fits the model to the example stream with windowed truncated BPTT.
// Each batch samples cfg.Batch windows of cfg.BPTT consecutive examples
// uniformly from data. It returns loss statistics; it panics if data is
// shorter than one window (a dataset that small is a harness bug).
func Train(m *Model, data []Example, cfg TrainConfig) TrainStats {
	cfg = cfg.withDefaults()
	var val []Example
	if cfg.ValFraction > 0 && cfg.ValFraction < 1 {
		cut := len(data) - int(float64(len(data))*cfg.ValFraction)
		if cut < cfg.BPTT {
			cut = cfg.BPTT
		}
		if cut < len(data) {
			val = data[cut:]
			data = data[:cut]
		}
	}
	if len(data) < cfg.BPTT {
		panic(fmt.Sprintf("nn: %d examples < one BPTT window of %d", len(data), cfg.BPTT))
	}
	src := rng.NewLabeled(cfg.Seed, "nn-train")
	opt := newSGD(m, cfg.LR, cfg.Momentum)

	stats := TrainStats{Batches: cfg.Batches}
	tenth := cfg.Batches / 10
	if tenth == 0 {
		tenth = 1
	}
	var firstSum, lastSum float64
	bestVal := math.Inf(1)
	bad := 0
	executed := 0

	for b := 0; b < cfg.Batches; b++ {
		executed++
		m.zeroGrads()
		var batchLoss float64
		steps := 0
		for w := 0; w < cfg.Batch; w++ {
			start := src.Intn(len(data) - cfg.BPTT + 1)
			batchLoss += m.bpttWindow(data[start:start+cfg.BPTT], cfg.Alpha)
			steps += cfg.BPTT
		}
		scale := 1 / float64(steps)
		if cfg.Clip > 0 {
			// Clip the mean gradient: fold the scale in first so the clip
			// threshold is independent of batch geometry.
			clipGrads(m, cfg.Clip, scale)
			// clipGrads only rescales when over the limit; apply the mean
			// scale explicitly either way via the optimizer's scale.
		}
		opt.step(m, scale)

		loss := batchLoss / float64(steps)
		if b < tenth {
			firstSum += loss
		}
		if b >= cfg.Batches-tenth {
			lastSum += loss
		}
		// Periodic validation check with early stopping.
		if len(val) > 0 && (b+1)%tenth == 0 {
			stats.ValLoss = EvalLoss(m, val, cfg.Alpha)
			if stats.ValLoss < bestVal-1e-9 {
				bestVal = stats.ValLoss
				bad = 0
			} else if cfg.Patience > 0 {
				bad++
				if bad >= cfg.Patience {
					stats.Stopped = true
					break
				}
			}
		}
	}
	stats.Batches = executed
	stats.FirstLoss = firstSum / float64(tenth)
	stats.LastLoss = lastSum / float64(tenth)
	if len(val) > 0 && stats.ValLoss == 0 {
		stats.ValLoss = EvalLoss(m, val, cfg.Alpha)
	}
	return stats
}

// bpttWindow runs one forward+backward pass over a window (state starts at
// zero) and returns the summed loss. Gradients accumulate into the model.
func (m *Model) bpttWindow(window []Example, alpha float64) float64 {
	T := len(window)
	// Forward, caching everything.
	caches := make([][]*stepCache, T) // [t][layer]
	tops := make([][]float64, T)      // top-layer h at each t
	dropLogits := make([]float64, T)  // drop-head outputs
	latOuts := make([]float64, T)     // latency-head outputs
	h := make([][]float64, m.Layers)  // running state
	c := make([][]float64, m.Layers)
	for l := 0; l < m.Layers; l++ {
		h[l] = make([]float64, m.Hidden)
		c[l] = make([]float64, m.Hidden)
	}
	var loss float64
	for t, ex := range window {
		caches[t] = make([]*stepCache, m.Layers)
		cur := ex.X
		for l, layer := range m.lstm {
			nh, nc, cache := layer.forward(cur, h[l], c[l])
			h[l], c[l] = nh, nc
			caches[t][l] = cache
			cur = nh
		}
		tops[t] = cur
		dropLogits[t] = m.DropHead.Forward(cur)[0]
		latOuts[t] = m.LatHead.Forward(cur)[0]

		// Joint loss (paper: L = L_drop + alpha * L_latency, with no
		// latency error back-propagated for dropped packets).
		y := 0.0
		if ex.Dropped {
			y = 1
		}
		z := dropLogits[t]
		loss += math.Max(z, 0) - z*y + math.Log1p(math.Exp(-math.Abs(z)))
		if !ex.Dropped {
			d := latOuts[t] - ex.Latency
			loss += alpha * d * d
		}
	}

	// Backward through time.
	dhCarry := make([][]float64, m.Layers)
	dcCarry := make([][]float64, m.Layers)
	for l := range dhCarry {
		dhCarry[l] = make([]float64, m.Hidden)
		dcCarry[l] = make([]float64, m.Hidden)
	}
	for t := T - 1; t >= 0; t-- {
		ex := window[t]
		y := 0.0
		if ex.Dropped {
			y = 1
		}
		dDrop := sigmoid(dropLogits[t]) - y
		dTop := m.DropHead.Backward(tops[t], []float64{dDrop})
		if !ex.Dropped {
			dLat := 2 * alpha * (latOuts[t] - ex.Latency)
			dTopLat := m.LatHead.Backward(tops[t], []float64{dLat})
			for i := range dTop {
				dTop[i] += dTopLat[i]
			}
		}
		// Descend the stack.
		dFromAbove := dTop
		for l := m.Layers - 1; l >= 0; l-- {
			dh := dhCarry[l]
			for i := range dh {
				dh[i] += dFromAbove[i]
			}
			dx, dhPrev, dcPrev := m.lstm[l].backward(caches[t][l], dh, dcCarry[l])
			dhCarry[l], dcCarry[l] = dhPrev, dcPrev
			dFromAbove = dx
		}
	}
	return loss
}

// EvalLoss computes the mean joint loss of the model over data, running
// statefully from a zero state (no gradient accumulation).
func EvalLoss(m *Model, data []Example, alpha float64) float64 {
	st := m.NewState()
	var loss float64
	n := 0
	for _, ex := range data {
		cur := ex.X
		for l, layer := range m.lstm {
			h, c, _ := layer.forward(cur, st.h[l], st.c[l])
			st.h[l], st.c[l] = h, c
			cur = h
		}
		z := m.DropHead.Forward(cur)[0]
		lat := m.LatHead.Forward(cur)[0]
		y := 0.0
		if ex.Dropped {
			y = 1
		}
		loss += math.Max(z, 0) - z*y + math.Log1p(math.Exp(-math.Abs(z)))
		if !ex.Dropped {
			d := lat - ex.Latency
			loss += alpha * d * d
		}
		n++
	}
	if n == 0 {
		return 0
	}
	return loss / float64(n)
}
