package nn

import (
	"bytes"
	"testing"

	"approxsim/internal/rng"
)

// FuzzLoad hardens model deserialization: arbitrary bytes must yield an
// error or a usable model, never a panic.
func FuzzLoad(f *testing.F) {
	var seed bytes.Buffer
	m := NewModel(3, 4, 2, rng.New(1))
	_ = m.Save(&seed)
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Add(seed.Bytes()[:len(seed.Bytes())/2]) // truncated

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully loaded model must predict without panicking.
		st := m.NewState()
		x := make([]float64, m.InDim)
		p, _ := m.Predict(x, st)
		if p < 0 || p > 1 {
			t.Fatalf("loaded model produced probability %v", p)
		}
	})
}
