package nn

import (
	"bytes"
	"math"
	"testing"

	"approxsim/internal/rng"
)

func TestSigmoid(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{100, 1},
		{-100, 0},
	}
	for _, c := range cases {
		if got := sigmoid(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("sigmoid(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	// Symmetry: sigmoid(-x) = 1 - sigmoid(x).
	for _, x := range []float64{0.3, 1.7, 5} {
		if d := sigmoid(-x) + sigmoid(x) - 1; math.Abs(d) > 1e-12 {
			t.Errorf("sigmoid symmetry broken at %v: %v", x, d)
		}
	}
}

func TestDenseForward(t *testing.T) {
	d := &Dense{In: 2, Out: 2,
		W:  []float64{1, 2, 3, 4},
		B:  []float64{10, 20},
		dW: make([]float64, 4), dB: make([]float64, 2),
	}
	y := d.Forward([]float64{1, 1})
	if y[0] != 13 || y[1] != 27 {
		t.Errorf("Forward = %v, want [13 27]", y)
	}
}

func TestDenseBackwardGradcheck(t *testing.T) {
	src := rng.New(1)
	d := NewDense(3, 2, src)
	x := []float64{0.5, -1.2, 0.3}
	// Scalar objective: sum of outputs squared.
	obj := func() float64 {
		y := d.Forward(x)
		return y[0]*y[0] + y[1]*y[1]
	}
	y := d.Forward(x)
	dx := d.Backward(x, []float64{2 * y[0], 2 * y[1]})
	const eps = 1e-6
	// Check dW numerically.
	for i := range d.W {
		old := d.W[i]
		d.W[i] = old + eps
		up := obj()
		d.W[i] = old - eps
		down := obj()
		d.W[i] = old
		num := (up - down) / (2 * eps)
		if math.Abs(num-d.dW[i]) > 1e-5*(1+math.Abs(num)) {
			t.Fatalf("dW[%d]: analytic %v vs numeric %v", i, d.dW[i], num)
		}
	}
	// Check dx numerically.
	for i := range x {
		old := x[i]
		x[i] = old + eps
		up := obj()
		x[i] = old - eps
		down := obj()
		x[i] = old
		num := (up - down) / (2 * eps)
		if math.Abs(num-dx[i]) > 1e-5*(1+math.Abs(num)) {
			t.Fatalf("dx[%d]: analytic %v vs numeric %v", i, dx[i], num)
		}
	}
}

// TestLSTMGradcheck verifies the hand-derived BPTT gradients against finite
// differences over a short window with the full joint loss. This is the
// single most important test in the package: if it passes, training is
// computing true gradients.
func TestLSTMGradcheck(t *testing.T) {
	src := rng.New(7)
	m := NewModel(3, 4, 2, src)
	window := []Example{
		{X: []float64{0.1, -0.2, 0.3}, Dropped: false, Latency: 0.7},
		{X: []float64{0.5, 0.1, -0.4}, Dropped: true},
		{X: []float64{-0.3, 0.8, 0.2}, Dropped: false, Latency: -0.2},
		{X: []float64{0.9, -0.5, 0.1}, Dropped: false, Latency: 0.4},
	}
	const alpha = 0.5
	m.zeroGrads()
	m.bpttWindow(window, alpha)

	lossOf := func() float64 {
		// Fresh forward (stateless from zero) exactly as bpttWindow does.
		h := make([][]float64, m.Layers)
		c := make([][]float64, m.Layers)
		for l := 0; l < m.Layers; l++ {
			h[l] = make([]float64, m.Hidden)
			c[l] = make([]float64, m.Hidden)
		}
		var loss float64
		for _, ex := range window {
			cur := ex.X
			for l, layer := range m.lstm {
				nh, nc, _ := layer.forward(cur, h[l], c[l])
				h[l], c[l] = nh, nc
				cur = nh
			}
			z := m.DropHead.Forward(cur)[0]
			lat := m.LatHead.Forward(cur)[0]
			y := 0.0
			if ex.Dropped {
				y = 1
			}
			loss += math.Max(z, 0) - z*y + math.Log1p(math.Exp(-math.Abs(z)))
			if !ex.Dropped {
				d := lat - ex.Latency
				loss += alpha * d * d
			}
		}
		return loss
	}

	const eps = 1e-6
	checked := 0
	for pi, p := range m.params() {
		w, g := p[0], p[1]
		// Check a deterministic subset of each tensor (full check is slow).
		stride := len(w)/7 + 1
		for i := 0; i < len(w); i += stride {
			old := w[i]
			w[i] = old + eps
			up := lossOf()
			w[i] = old - eps
			down := lossOf()
			w[i] = old
			num := (up - down) / (2 * eps)
			if math.Abs(num-g[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("param %d index %d: analytic %v vs numeric %v", pi, i, g[i], num)
			}
			checked++
		}
	}
	if checked < 50 {
		t.Fatalf("gradcheck covered only %d weights", checked)
	}
}

func TestModelStatePropagation(t *testing.T) {
	src := rng.New(2)
	m := NewModel(2, 8, 2, src)
	st := m.NewState()
	x := []float64{1, -1}
	p1, _ := m.Predict(x, st)
	p2, _ := m.Predict(x, st)
	// With recurrent state, the same input generally yields different
	// outputs on consecutive steps.
	if p1 == p2 {
		t.Error("state appears not to propagate between Predict calls")
	}
	// A fresh state must reproduce the first output exactly.
	st2 := m.NewState()
	p1b, _ := m.Predict(x, st2)
	if p1 != p1b {
		t.Error("fresh state did not reproduce first prediction")
	}
}

func TestPredictProbabilityRange(t *testing.T) {
	src := rng.New(3)
	m := NewModel(4, 8, 1, src)
	st := m.NewState()
	r := rng.New(9)
	for i := 0; i < 200; i++ {
		x := []float64{r.Normal(0, 2), r.Normal(0, 2), r.Float64(), r.Float64()}
		p, _ := m.Predict(x, st)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("drop probability %v out of range", p)
		}
	}
}

// TestTrainingLearnsDropRule: the model must learn a synthetic rule — drop
// iff x[0] > 0.5 — far above chance, and the loss must fall.
func TestTrainingLearnsDropRule(t *testing.T) {
	src := rng.New(11)
	var data []Example
	for i := 0; i < 3000; i++ {
		x := []float64{src.Float64(), src.Float64()}
		data = append(data, Example{X: x, Dropped: x[0] > 0.5, Latency: 0.5})
	}
	m := NewModel(2, 12, 1, rng.New(5))
	stats := Train(m, data, TrainConfig{
		LR: 0.05, Batches: 150, Batch: 16, BPTT: 8, Seed: 1,
	})
	if stats.LastLoss >= stats.FirstLoss {
		t.Errorf("loss did not decrease: first %v last %v", stats.FirstLoss, stats.LastLoss)
	}
	// Evaluate accuracy statefully.
	st := m.NewState()
	correct, total := 0, 0
	for i := 0; i < 500; i++ {
		x := []float64{src.Float64(), src.Float64()}
		p, _ := m.Predict(x, st)
		want := x[0] > 0.5
		if (p > 0.5) == want {
			correct++
		}
		total++
	}
	acc := float64(correct) / float64(total)
	if acc < 0.8 {
		t.Errorf("drop-rule accuracy %.2f < 0.8", acc)
	}
}

// TestTrainingLearnsLatencyRegression: latency = 0.8*x[0] + 0.1, no drops.
func TestTrainingLearnsLatencyRegression(t *testing.T) {
	src := rng.New(13)
	var data []Example
	for i := 0; i < 3000; i++ {
		x := []float64{src.Float64()}
		data = append(data, Example{X: x, Latency: 0.8*x[0] + 0.1})
	}
	m := NewModel(1, 10, 1, rng.New(6))
	Train(m, data, TrainConfig{
		LR: 0.05, Alpha: 1.0, Batches: 200, Batch: 16, BPTT: 8, Seed: 2,
	})
	st := m.NewState()
	var sumErr float64
	const n = 300
	for i := 0; i < n; i++ {
		x := []float64{src.Float64()}
		_, lat := m.Predict(x, st)
		want := 0.8*x[0] + 0.1
		sumErr += math.Abs(lat - want)
	}
	if mae := sumErr / n; mae > 0.1 {
		t.Errorf("latency MAE %.3f > 0.1 after training", mae)
	}
}

// TestTrainingLearnsTemporalPattern: drop depends on the PREVIOUS input
// (x[0] of step t-1 > 0.5) — only a recurrent model can learn it.
func TestTrainingLearnsTemporalPattern(t *testing.T) {
	src := rng.New(17)
	var data []Example
	prev := 0.0
	for i := 0; i < 4000; i++ {
		x := []float64{src.Float64()}
		data = append(data, Example{X: x, Dropped: prev > 0.5, Latency: 0.3})
		prev = x[0]
	}
	m := NewModel(1, 16, 1, rng.New(8))
	Train(m, data, TrainConfig{
		LR: 0.08, Batches: 250, Batch: 16, BPTT: 8, Seed: 3,
	})
	st := m.NewState()
	correct, total := 0, 0
	prev = 0
	for i := 0; i < 600; i++ {
		x := []float64{src.Float64()}
		p, _ := m.Predict(x, st)
		if i > 0 { // first prediction has no previous input
			if (p > 0.5) == (prev > 0.5) {
				correct++
			}
			total++
		}
		prev = x[0]
	}
	acc := float64(correct) / float64(total)
	if acc < 0.75 {
		t.Errorf("temporal accuracy %.2f < 0.75: LSTM memory not working", acc)
	}
}

func TestEvalLoss(t *testing.T) {
	m := NewModel(2, 4, 1, rng.New(1))
	data := []Example{
		{X: []float64{0, 0}, Latency: 0.5},
		{X: []float64{1, 1}, Dropped: true},
	}
	l := EvalLoss(m, data, 0.5)
	if l <= 0 || math.IsNaN(l) {
		t.Errorf("EvalLoss = %v", l)
	}
	if EvalLoss(m, nil, 0.5) != 0 {
		t.Error("empty EvalLoss should be 0")
	}
}

func TestTrainPanicsOnTinyData(t *testing.T) {
	m := NewModel(1, 4, 1, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("Train on too-small dataset did not panic")
		}
	}()
	Train(m, []Example{{X: []float64{1}}}, TrainConfig{BPTT: 16})
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := NewModel(5, 6, 2, rng.New(21))
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.InDim != 5 || m2.Hidden != 6 || m2.Layers != 2 {
		t.Fatalf("loaded dims wrong: %+v", m2)
	}
	// Same predictions on the same input stream.
	st1, st2 := m.NewState(), m2.NewState()
	r := rng.New(4)
	for i := 0; i < 20; i++ {
		x := make([]float64, 5)
		for j := range x {
			x[j] = r.Normal(0, 1)
		}
		p1, l1 := m.Predict(x, st1)
		p2, l2 := m2.Predict(x, st2)
		if p1 != p2 || l1 != l2 {
			t.Fatalf("loaded model diverges at step %d", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("Load accepted garbage")
	}
}

func TestNumParams(t *testing.T) {
	m := NewModel(3, 4, 2, rng.New(1))
	// Layer 1: 4*4*(3+4)+16 = 128; layer 2: 4*4*(4+4)+16 = 144;
	// heads: 2*(4+1) = 10. Total 282.
	if got := m.NumParams(); got != 282 {
		t.Errorf("NumParams = %d, want 282", got)
	}
}

func TestGradClipBoundsNorm(t *testing.T) {
	m := NewModel(2, 4, 1, rng.New(2))
	m.zeroGrads()
	// Inject huge gradients.
	for _, p := range m.params() {
		for i := range p[1] {
			p[1][i] = 1000
		}
	}
	clipGrads(m, 1.0, 1.0)
	var sq float64
	for _, p := range m.params() {
		for _, g := range p[1] {
			sq += g * g
		}
	}
	if norm := math.Sqrt(sq); norm > 1.0+1e-9 {
		t.Errorf("clipped norm = %v > 1", norm)
	}
}

func BenchmarkPredictHidden32(b *testing.B) {
	m := NewModel(12, 32, 2, rng.New(1))
	st := m.NewState()
	x := make([]float64, 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Predict(x, st)
	}
}

func BenchmarkPredictHidden128(b *testing.B) {
	// The paper's full-size micro model (2x128).
	m := NewModel(12, 128, 2, rng.New(1))
	st := m.NewState()
	x := make([]float64, 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Predict(x, st)
	}
}

func BenchmarkTrainBatch(b *testing.B) {
	src := rng.New(1)
	var data []Example
	for i := 0; i < 2000; i++ {
		data = append(data, Example{X: []float64{src.Float64(), src.Float64()}, Latency: 0.5})
	}
	m := NewModel(2, 32, 2, rng.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(m, data, TrainConfig{Batches: 1, Batch: 8, BPTT: 16, Seed: uint64(i)})
	}
}

func TestValidationAndEarlyStopping(t *testing.T) {
	src := rng.New(31)
	var data []Example
	for i := 0; i < 2000; i++ {
		x := []float64{src.Float64()}
		data = append(data, Example{X: x, Latency: 0.6 * x[0]})
	}
	m := NewModel(1, 8, 1, rng.New(7))
	stats := Train(m, data, TrainConfig{
		LR: 0.05, Alpha: 1.0, Batches: 400, Batch: 8, BPTT: 8, Seed: 1,
		ValFraction: 0.2, Patience: 2,
	})
	if stats.ValLoss <= 0 {
		t.Error("validation loss not computed")
	}
	// On this trivially learnable task, either it converges and early-stops
	// or runs to completion with a low validation loss.
	if stats.Stopped && stats.Batches >= 400 {
		t.Error("Stopped set but all batches ran")
	}
	if !stats.Stopped && stats.Batches != 400 {
		t.Errorf("no early stop but only %d batches executed", stats.Batches)
	}
	if stats.ValLoss > 1.0 {
		t.Errorf("validation loss %v did not come down", stats.ValLoss)
	}
}

func TestValidationHoldoutNotTrainedOn(t *testing.T) {
	// With ValFraction nearly 1, almost no training data remains; the run
	// must still work on the clamped minimum window.
	src := rng.New(33)
	var data []Example
	for i := 0; i < 100; i++ {
		data = append(data, Example{X: []float64{src.Float64()}, Latency: 0.5})
	}
	m := NewModel(1, 4, 1, rng.New(8))
	stats := Train(m, data, TrainConfig{
		Batches: 10, Batch: 4, BPTT: 8, Seed: 2, ValFraction: 0.95,
	})
	if stats.ValLoss <= 0 {
		t.Error("validation never evaluated")
	}
}
