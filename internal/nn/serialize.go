package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// modelSnapshot is the on-disk form of a Model: architecture plus weights.
// Training state (gradients, momentum) is not persisted — a loaded model is
// for inference or fresh fine-tuning.
type modelSnapshot struct {
	InDim, Hidden, Layers int
	Wx, Wh, B             [][]float64
	DropW, DropB          []float64
	LatW, LatB            []float64
}

// Save writes the model to w in gob format.
func (m *Model) Save(w io.Writer) error {
	snap := modelSnapshot{
		InDim: m.InDim, Hidden: m.Hidden, Layers: m.Layers,
		DropW: m.DropHead.W, DropB: m.DropHead.B,
		LatW: m.LatHead.W, LatB: m.LatHead.B,
	}
	for _, l := range m.lstm {
		snap.Wx = append(snap.Wx, l.Wx)
		snap.Wh = append(snap.Wh, l.Wh)
		snap.B = append(snap.B, l.B)
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("nn: encoding model: %w", err)
	}
	return nil
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var snap modelSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("nn: decoding model: %w", err)
	}
	if snap.InDim <= 0 || snap.Hidden <= 0 || snap.Layers <= 0 ||
		len(snap.Wx) != snap.Layers || len(snap.Wh) != snap.Layers || len(snap.B) != snap.Layers {
		return nil, fmt.Errorf("nn: corrupt model snapshot")
	}
	m := &Model{InDim: snap.InDim, Hidden: snap.Hidden, Layers: snap.Layers}
	for l := 0; l < snap.Layers; l++ {
		in := snap.InDim
		if l > 0 {
			in = snap.Hidden
		}
		layer := &lstmLayer{
			In: in, Hidden: snap.Hidden,
			Wx: snap.Wx[l], Wh: snap.Wh[l], B: snap.B[l],
			dWx: make([]float64, 4*snap.Hidden*in),
			dWh: make([]float64, 4*snap.Hidden*snap.Hidden),
			dB:  make([]float64, 4*snap.Hidden),
		}
		if len(layer.Wx) != 4*snap.Hidden*in || len(layer.Wh) != 4*snap.Hidden*snap.Hidden ||
			len(layer.B) != 4*snap.Hidden {
			return nil, fmt.Errorf("nn: layer %d weight shapes inconsistent", l)
		}
		m.lstm = append(m.lstm, layer)
	}
	mk := func(w, b []float64, in int) (*Dense, error) {
		if len(w) != in || len(b) != 1 {
			return nil, fmt.Errorf("nn: head shape inconsistent")
		}
		return &Dense{In: in, Out: 1, W: w, B: b,
			dW: make([]float64, in), dB: make([]float64, 1)}, nil
	}
	var err error
	if m.DropHead, err = mk(snap.DropW, snap.DropB, snap.Hidden); err != nil {
		return nil, err
	}
	if m.LatHead, err = mk(snap.LatW, snap.LatB, snap.Hidden); err != nil {
		return nil, err
	}
	return m, nil
}
