package flowsim

import (
	"fmt"
	"testing"

	"approxsim/internal/des"
	"approxsim/internal/packet"
	"approxsim/internal/topology"
)

// TestFCTPanicsOnIncompleteFlow pins the contract that replaced the old
// silent bug: FCT on a never-completed flow used to return end-Start with a
// zero end — a huge negative duration that poisoned means downstream.
func TestFCTPanicsOnIncompleteFlow(t *testing.T) {
	s := newSim(t, 2)
	// 1 GB in 1µs cannot finish.
	s.Add(Flow{ID: 1, Src: 0, Dst: 8, Size: 1 << 30, Start: 0})
	flows := s.Run(des.Microsecond)
	if len(flows) != 1 || flows[0].Completed() {
		t.Fatal("flow unexpectedly completed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FCT() on an incomplete flow did not panic")
		}
	}()
	_ = flows[0].FCT()
}

// TestRunDeterministicUnderTies reruns a workload engineered for
// same-timestamp collisions — batches of identical flows arriving at the
// same instants, completing at the same instants — and demands bit-identical
// outcomes. Before the ID-ordered tie-breaks, the active-set map iteration
// made completion order (and with it every subsequent fair-share epoch)
// depend on Go's randomized map walk.
func TestRunDeterministicUnderTies(t *testing.T) {
	run := func() string {
		topo, err := topology.Build(des.NewKernel(), topology.DefaultClosConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		s := New(topo)
		id := uint64(1)
		// Four arrival instants, each with a burst of same-size flows from
		// distinct sources so shares and completions collide exactly.
		for wave := 0; wave < 4; wave++ {
			at := des.Time(wave) * 100 * des.Microsecond
			for i := 0; i < 6; i++ {
				src := packet.HostID(i)
				dst := packet.HostID((i + 8) % 16)
				s.Add(Flow{ID: id, Src: src, Dst: dst, Size: 1 << 20, Start: at})
				id++
			}
		}
		flows := s.Run(des.Second)
		out := ""
		for _, f := range flows {
			end := des.Time(-1)
			if f.Completed() {
				end = f.FCT()
			}
			out += fmt.Sprintf("%d:%v:%v;", f.ID, f.Completed(), end)
		}
		return out
	}
	want := run()
	for i := 0; i < 10; i++ {
		if got := run(); got != want {
			t.Fatalf("run %d diverged:\n got %s\nwant %s", i, got, want)
		}
	}
}
