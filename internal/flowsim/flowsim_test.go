package flowsim

import (
	"math"
	"testing"

	"approxsim/internal/des"
	"approxsim/internal/packet"
	"approxsim/internal/topology"
)

func newSim(t *testing.T, clusters int) *Simulator {
	t.Helper()
	topo, err := topology.Build(des.NewKernel(), topology.DefaultClosConfig(clusters))
	if err != nil {
		t.Fatal(err)
	}
	return New(topo)
}

func TestSingleFlowLineRate(t *testing.T) {
	s := newSim(t, 2)
	// 10 MB at 10 Gb/s bottleneck -> 8ms.
	s.Add(Flow{ID: 1, Src: 0, Dst: 8, Size: 10 << 20, Start: 0})
	flows := s.Run(des.Second)
	if len(flows) != 1 || !flows[0].Completed() {
		t.Fatal("flow did not complete")
	}
	want := float64(10<<20) * 8 / 10e9
	got := flows[0].FCT().Seconds()
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("FCT = %v s, want %v s", got, want)
	}
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	s := newSim(t, 2)
	// Both flows source from host 0: share its NIC at 5 Gb/s each.
	s.Add(Flow{ID: 1, Src: 0, Dst: 8, Size: 5 << 20, Start: 0})
	s.Add(Flow{ID: 2, Src: 0, Dst: 9, Size: 5 << 20, Start: 0})
	flows := s.Run(des.Second)
	for _, f := range flows {
		if !f.Completed() {
			t.Fatal("flow incomplete")
		}
		// Each gets 5 Gb/s: 5MB -> ~8.4ms.
		want := float64(5<<20) * 8 / 5e9
		if got := f.FCT().Seconds(); math.Abs(got-want)/want > 0.02 {
			t.Errorf("flow %d FCT %v, want %v", f.ID, got, want)
		}
	}
}

func TestMaxMinUnevenShares(t *testing.T) {
	// Flow A traverses host 0's NIC alone (to a same-rack peer); flows B
	// and C share host 1's NIC to two other same-rack peers. Same-rack
	// paths share no fabric links, so A should finish a same-size transfer
	// roughly twice as fast.
	s := newSim(t, 2)
	const size = 4 << 20
	s.Add(Flow{ID: 1, Src: 0, Dst: 4, Size: size, Start: 0})
	s.Add(Flow{ID: 2, Src: 1, Dst: 2, Size: size, Start: 0})
	s.Add(Flow{ID: 3, Src: 1, Dst: 3, Size: size, Start: 0})
	flows := s.Run(des.Second)
	fcts := map[uint64]float64{}
	for _, f := range flows {
		if !f.Completed() {
			t.Fatal("incomplete")
		}
		fcts[f.ID] = f.FCT().Seconds()
	}
	if ratio := fcts[2] / fcts[1]; ratio < 1.6 || ratio > 2.4 {
		t.Errorf("shared-NIC flow took %vx the solo flow, want ~2x", ratio)
	}
}

func TestLateArrivalReducesRate(t *testing.T) {
	s := newSim(t, 2)
	// Flow 1 runs alone for 4ms (transfers 5MB), then flow 2 joins.
	s.Add(Flow{ID: 1, Src: 0, Dst: 8, Size: 10 << 20, Start: 0})
	s.Add(Flow{ID: 2, Src: 0, Dst: 9, Size: 10 << 20, Start: des.FromSeconds(0.004)})
	flows := s.Run(des.Second)
	var f1, f2 *Flow
	for _, f := range flows {
		if f.ID == 1 {
			f1 = f
		} else {
			f2 = f
		}
	}
	if !f1.Completed() || !f2.Completed() {
		t.Fatal("incomplete flows")
	}
	// f1: 4ms solo (5MB at 1.25 GB/s) then fair-shared at 5 Gb/s until its
	// remaining ~5.5MB drains: ~12.8ms total.
	want1 := 0.004 + (float64(10<<20)-1.25e9*0.004)/0.625e9
	if got := f1.FCT().Seconds(); math.Abs(got-want1)/want1 > 0.05 {
		t.Errorf("f1 FCT %v, want ~%v", got, want1)
	}
	// The late flow must complete strictly after the head-start flow in
	// absolute time (equal-size flows on one bottleneck).
	if f2.end <= f1.end {
		t.Error("late flow finished no later than the head-start flow")
	}
}

func TestIncompleteAtHorizon(t *testing.T) {
	s := newSim(t, 2)
	s.Add(Flow{ID: 1, Src: 0, Dst: 8, Size: 1 << 30, Start: 0})
	flows := s.Run(des.Millisecond)
	if flows[0].Completed() {
		t.Error("1 GB flow completed in 1ms at 10 Gb/s: impossible")
	}
}

func TestManyFlowsAllComplete(t *testing.T) {
	s := newSim(t, 4)
	n := 0
	for src := 0; src < 16; src++ {
		for k := 0; k < 3; k++ {
			dst := (src + 8 + k) % 32
			n++
			s.Add(Flow{
				ID: uint64(n), Src: packet.HostID(src), Dst: packet.HostID(dst),
				Size: 100_000, Start: des.Time(n) * des.Microsecond,
			})
		}
	}
	flows := s.Run(10 * des.Second)
	for _, f := range flows {
		if !f.Completed() {
			t.Errorf("flow %d incomplete", f.ID)
		}
	}
	if s.Events() == 0 {
		t.Error("no events counted")
	}
}

func TestFluidMuchCheaperThanPacket(t *testing.T) {
	// The baseline's selling point: event count scales with flows, not
	// packets. A 10 MB flow is 1 arrival + 1 completion here versus
	// thousands of packet events.
	s := newSim(t, 2)
	s.Add(Flow{ID: 1, Src: 0, Dst: 8, Size: 10 << 20, Start: 0})
	s.Run(des.Second)
	if s.Events() > 4 {
		t.Errorf("fluid sim used %d events for one flow", s.Events())
	}
}

func TestZeroSizePanics(t *testing.T) {
	s := newSim(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size flow did not panic")
		}
	}()
	s.Add(Flow{ID: 1, Src: 0, Dst: 8, Size: 0})
}

func BenchmarkFluid1000Flows(b *testing.B) {
	topo, _ := topology.Build(des.NewKernel(), topology.DefaultClosConfig(4))
	for i := 0; i < b.N; i++ {
		s := New(topo)
		for j := 0; j < 1000; j++ {
			s.Add(Flow{
				ID: uint64(j + 1), Src: packet.HostID(j % 32), Dst: packet.HostID((j + 9) % 32),
				Size: 50_000, Start: des.Time(j) * 10 * des.Microsecond,
			})
		}
		s.Run(des.Second)
	}
}

// TestPropertyLinkCapacityRespected: after every recompute, the sum of
// flow rates on each link must not exceed its capacity.
func TestPropertyLinkCapacityRespected(t *testing.T) {
	topo, err := topology.Build(des.NewKernel(), topology.DefaultClosConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	s := New(topo)
	// A mixed workload with overlapping paths and staggered arrivals.
	for i := 0; i < 60; i++ {
		s.Add(Flow{
			ID:    uint64(i + 1),
			Src:   packet.HostID(i % 16),
			Dst:   packet.HostID((i*7 + 3) % 16),
			Size:  200_000 + int64(i)*10_000,
			Start: des.Time(i) * 50 * des.Microsecond,
		})
	}
	// Drive the run manually so we can audit rates between events.
	flows := s.Run(des.Second)
	// After the final event, audit the last rate assignment recorded on
	// still-active flows plus invariants on finished ones.
	sums := make(map[int]float64)
	for _, f := range flows {
		if f.Completed() {
			continue
		}
		for _, li := range f.links {
			sums[li] += f.rate
		}
	}
	for li, sum := range sums {
		if sum > s.links[li].capacity*1.0001 {
			t.Errorf("link %d oversubscribed: %v > %v", li, sum, s.links[li].capacity)
		}
	}
	for _, f := range flows {
		if f.Completed() && f.FCT() <= 0 {
			t.Errorf("flow %d completed with non-positive FCT", f.ID)
		}
	}
}

// TestFluidAggregateConservation: total bytes completed must equal the sum
// of completed flow sizes (integration errors must not leak bytes).
func TestFluidAggregateConservation(t *testing.T) {
	topo, _ := topology.Build(des.NewKernel(), topology.DefaultClosConfig(2))
	s := New(topo)
	var want int64
	for i := 0; i < 25; i++ {
		size := int64(50_000 * (i + 1))
		want += size
		s.Add(Flow{ID: uint64(i + 1), Src: packet.HostID(i % 8), Dst: packet.HostID(8 + i%8),
			Size: size, Start: des.Time(i) * des.Microsecond})
	}
	var got int64
	for _, f := range s.Run(10 * des.Second) {
		if !f.Completed() {
			t.Fatalf("flow %d incomplete", f.ID)
		}
		if f.remaining > 1 {
			t.Errorf("flow %d completed with %v bytes remaining", f.ID, f.remaining)
		}
		got += f.Size
	}
	if got != want {
		t.Errorf("completed %d bytes, want %d", got, want)
	}
}
