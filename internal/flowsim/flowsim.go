// Package flowsim is a flow-level (fluid) network simulator — the
// "lower-granularity" alternative the paper positions itself against (§2,
// §8: "Flow-level simulation ... can provide insight into the general
// behavior of the system, but miss[es] out on many important network
// effects, particularly in the presence of bursty traffic").
//
// Instead of packets and queues, every active flow receives a max-min fair
// share of each link on its path, recomputed whenever a flow arrives or
// completes (progressive filling). There are no drops, no retransmissions,
// no slow start — which is precisely why it is fast and why it misses
// TCP's transient behavior. It serves as the evaluation's speed/accuracy
// baseline and as a sanity anchor: steady-state goodput of the packet
// simulator should approach the fluid rates.
package flowsim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"approxsim/internal/des"
	"approxsim/internal/packet"
	"approxsim/internal/topology"
)

// Flow is one fluid transfer.
type Flow struct {
	ID       uint64
	Src, Dst packet.HostID
	Size     int64 // bytes
	Start    des.Time

	remaining float64 // bytes
	rate      float64 // bytes/sec, from the last fair-share computation
	links     []int   // indexes into the simulator's link table
	done      bool
	end       des.Time
}

// FCT returns the flow's completion time. It panics on a flow that never
// completed: end is zero for such flows, so end-Start would silently return
// a negative garbage duration. Callers must check Completed() first.
func (f *Flow) FCT() des.Time {
	if !f.done {
		panic(fmt.Sprintf("flowsim: FCT of incomplete flow %d (check Completed() first)", f.ID))
	}
	return f.end - f.Start
}

// Completed reports whether the flow finished within the simulated horizon.
func (f *Flow) Completed() bool { return f.done }

// link is one capacity-constrained resource.
type link struct {
	capacity float64 // bytes/sec
	flows    map[uint64]*Flow
}

// Simulator runs a set of scheduled flows over a topology's link graph.
type Simulator struct {
	topo  *topology.Topology
	links []*link
	// linkIndex maps a (from, to) device pair to its directed link.
	linkIndex map[[2]packet.NodeID]int

	pending  []*Flow // not yet arrived, sorted by Start
	active   map[uint64]*Flow
	now      des.Time
	events   uint64
	finished []*Flow
}

// New creates a fluid simulator over the same topology the packet
// simulator uses (links and capacities are derived from its config).
func New(topo *topology.Topology) *Simulator {
	s := &Simulator{
		topo:      topo,
		linkIndex: make(map[[2]packet.NodeID]int),
		active:    make(map[uint64]*Flow),
	}
	return s
}

// linkFor returns (creating on first use) the directed link from a to b
// with the given capacity in bits/sec.
func (s *Simulator) linkFor(a, b packet.NodeID, bps int64) int {
	key := [2]packet.NodeID{a, b}
	if idx, ok := s.linkIndex[key]; ok {
		return idx
	}
	s.links = append(s.links, &link{
		capacity: float64(bps) / 8,
		flows:    make(map[uint64]*Flow),
	})
	s.linkIndex[key] = len(s.links) - 1
	return len(s.links) - 1
}

// route enumerates the directed links flow f traverses, using the same
// deterministic ECMP paths as the packet simulator.
func (s *Simulator) route(f *Flow) []int {
	cfg := s.topo.Cfg
	p := s.topo.PathFor(f.Src, f.Dst, f.ID)
	srcNode := packet.NodeID(f.Src)
	dstNode := packet.NodeID(f.Dst)
	var out []int
	add := func(a, b packet.NodeID, bps int64) {
		out = append(out, s.linkFor(a, b, bps))
	}
	hostBW := cfg.HostLink.BandwidthBps
	fabBW := cfg.FabricLink.BandwidthBps
	coreBW := cfg.CoreLink.BandwidthBps

	add(srcNode, p.SrcToR, hostBW)
	if p.SrcAgg >= 0 {
		add(p.SrcToR, p.SrcAgg, fabBW)
		if p.Core >= 0 {
			add(p.SrcAgg, p.Core, coreBW)
			add(p.Core, p.DstAgg, coreBW)
		}
		if p.DstAgg != p.SrcAgg || p.Core >= 0 {
			add(p.DstAgg, p.DstToR, fabBW)
		} else {
			add(p.SrcAgg, p.DstToR, fabBW)
		}
	}
	add(p.DstToR, dstNode, hostBW)
	return out
}

// Add schedules a flow. Must be called before Run.
func (s *Simulator) Add(f Flow) {
	if f.Size <= 0 {
		panic(fmt.Sprintf("flowsim: flow %d has non-positive size", f.ID))
	}
	fl := f
	fl.remaining = float64(f.Size)
	s.pending = append(s.pending, &fl)
}

// recompute assigns max-min fair rates to all active flows by progressive
// filling: repeatedly saturate the most constrained link, freeze its flows,
// and continue with residual capacities.
func (s *Simulator) recompute() {
	if len(s.active) == 0 {
		return
	}
	residual := make([]float64, len(s.links))
	remaining := make([]int, len(s.links))
	for i, l := range s.links {
		residual[i] = l.capacity
		remaining[i] = len(l.flows)
	}
	frozen := make(map[uint64]bool, len(s.active))
	for len(frozen) < len(s.active) {
		// Most constrained link: smallest fair share among links that still
		// carry unfrozen flows.
		best, bestShare := -1, math.MaxFloat64
		for i := range s.links {
			if remaining[i] == 0 {
				continue
			}
			share := residual[i] / float64(remaining[i])
			if share < bestShare {
				best, bestShare = i, share
			}
		}
		if best < 0 {
			break // all remaining flows traverse no links (impossible)
		}
		for id, f := range s.links[best].flows {
			if frozen[id] {
				continue
			}
			frozen[id] = true
			f.rate = bestShare
			for _, li := range f.links {
				residual[li] -= bestShare
				if residual[li] < 0 {
					residual[li] = 0
				}
				remaining[li]--
			}
		}
	}
}

// Run executes to the given horizon and returns all flows (finished and
// not). Flows still active at the horizon keep done == false.
func (s *Simulator) Run(until des.Time) []*Flow {
	// Min-heap of pending arrivals by start time.
	h := arrivalHeap(s.pending)
	heap.Init(&h)

	for {
		// Next completion under current rates. Iterating the active map
		// yields a random order, so same-timestamp completions MUST be
		// tie-broken on flow ID or reruns of the same workload diverge.
		var nextDone *Flow
		doneAt := des.MaxTime
		for _, f := range s.active {
			if f.rate <= 0 {
				continue
			}
			t := s.now + des.FromSeconds(f.remaining/f.rate) + 1
			if t < doneAt || (t == doneAt && nextDone != nil && f.ID < nextDone.ID) {
				doneAt, nextDone = t, f
			}
		}
		arriveAt := des.MaxTime
		if h.Len() > 0 {
			arriveAt = h[0].Start
		}
		next := doneAt
		if arriveAt < next {
			next = arriveAt
		}
		if next > until || next == des.MaxTime {
			s.advance(until)
			break
		}
		s.advance(next)
		s.events++
		// An arrival and a completion at the same instant order by flow ID,
		// like everything else — not "arrival always first".
		if arriveAt < doneAt || (arriveAt == doneAt && h[0].ID < nextDone.ID) {
			f := heap.Pop(&h).(*Flow)
			f.links = s.route(f)
			s.active[f.ID] = f
			for _, li := range f.links {
				s.links[li].flows[f.ID] = f
			}
		} else {
			s.finish(nextDone)
		}
		s.recompute()
	}

	out := make([]*Flow, 0, len(s.finished)+len(s.active))
	out = append(out, s.finished...)
	for _, f := range s.active {
		out = append(out, f)
	}
	// Map iteration would leak nondeterministic ordering of the unfinished
	// tail to callers; return everything in flow-ID order instead.
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// advance integrates transferred bytes up to time t.
func (s *Simulator) advance(t des.Time) {
	dt := (t - s.now).Seconds()
	if dt > 0 {
		for _, f := range s.active {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
	}
	s.now = t
}

func (s *Simulator) finish(f *Flow) {
	f.done = true
	f.end = s.now
	f.remaining = 0
	delete(s.active, f.ID)
	for _, li := range f.links {
		delete(s.links[li].flows, f.ID)
	}
	s.finished = append(s.finished, f)
}

// Events returns how many arrival/completion events the run processed —
// the fluid analogue of the packet simulator's event count.
func (s *Simulator) Events() uint64 { return s.events }

// arrivalHeap orders pending flows by start time, flow ID breaking ties so
// same-instant arrivals enter the fair-share computation deterministically.
type arrivalHeap []*Flow

func (h arrivalHeap) Len() int { return len(h) }
func (h arrivalHeap) Less(i, j int) bool {
	if h[i].Start != h[j].Start {
		return h[i].Start < h[j].Start
	}
	return h[i].ID < h[j].ID
}
func (h arrivalHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x interface{}) { *h = append(*h, x.(*Flow)) }
func (h *arrivalHeap) Pop() interface{} {
	old := *h
	n := len(old)
	f := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return f
}
