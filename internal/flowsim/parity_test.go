package flowsim

import (
	"fmt"
	"testing"

	"approxsim/internal/des"
	"approxsim/internal/netsim"
	"approxsim/internal/packet"
	"approxsim/internal/topology"
)

// walkPacketPath traverses the packet topology hop by hop — the same way a
// packet actually moves: topology.Route picks the egress port at each switch,
// Port.Peer crosses the link — and returns the directed (from, to) node pairs
// visited from src to dst.
func walkPacketPath(t *testing.T, topo *topology.Topology, src, dst packet.HostID, flowID uint64) [][2]packet.NodeID {
	t.Helper()
	probe := &packet.Packet{Src: src, Dst: dst, FlowID: flowID}
	var hops [][2]packet.NodeID

	// Host NIC: single port, no routing decision.
	cur, _ := topo.Hosts[src].NIC().Peer()
	hops = append(hops, [2]packet.NodeID{packet.NodeID(src), cur.NodeID()})
	for i := 0; i < 8; i++ { // bound: no real path exceeds 6 hops
		sw, ok := cur.(*netsim.Switch)
		if !ok {
			break // reached a host
		}
		port, ok := topo.Route(sw.NodeID(), probe)
		if !ok {
			t.Fatalf("route failed at switch %d for %d->%d", sw.NodeID(), src, dst)
		}
		next, _ := sw.Port(port).Peer()
		hops = append(hops, [2]packet.NodeID{sw.NodeID(), next.NodeID()})
		cur = next
	}
	if cur.NodeID() != packet.NodeID(dst) {
		t.Fatalf("walk from %d to %d ended at node %d", src, dst, cur.NodeID())
	}
	return hops
}

// TestRouteParity is the regression test for the fluid/packet path split:
// flowsim.route must put a flow on exactly the directed links the packet
// simulator's Route walks, in order, for both topology kinds. A divergence
// here silently invalidates every fluid-vs-packet comparison.
func TestRouteParity(t *testing.T) {
	cases := []struct {
		name string
		cfg  topology.Config
	}{
		{"leafspine", topology.DefaultLeafSpineConfig(4)},
		{"clos", topology.DefaultClosConfig(3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo, err := topology.Build(des.NewKernel(), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			s := New(topo)
			hosts := tc.cfg.NumHosts()

			// Reverse index: flowsim link id -> directed node pair.
			pairOf := func() map[int][2]packet.NodeID {
				m := make(map[int][2]packet.NodeID, len(s.linkIndex))
				for k, v := range s.linkIndex {
					m[v] = k
				}
				return m
			}

			// Every (src, dst) pair with a few flow IDs covers same-rack,
			// intra-cluster, and inter-cluster paths plus ECMP spread.
			for src := 0; src < hosts; src++ {
				for dst := 0; dst < hosts; dst++ {
					if src == dst {
						continue
					}
					for _, flowID := range []uint64{1, 7, 42} {
						f := &Flow{ID: flowID, Src: packet.HostID(src), Dst: packet.HostID(dst)}
						fluidLinks := s.route(f)
						rev := pairOf()
						var fluid [][2]packet.NodeID
						for _, li := range fluidLinks {
							fluid = append(fluid, rev[li])
						}
						pkt := walkPacketPath(t, topo, f.Src, f.Dst, flowID)
						if fmt.Sprint(fluid) != fmt.Sprint(pkt) {
							t.Fatalf("flow %d %d->%d: fluid links %v != packet path %v",
								flowID, src, dst, fluid, pkt)
						}
					}
				}
			}
		})
	}
}
