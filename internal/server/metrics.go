package server

import (
	"net/http"
	"time"

	"approxsim/internal/metrics"
)

// endpointNames is the fixed instrumented-endpoint set, in exposition order.
// Fixing the set at construction keeps the /metrics schema identical from the
// first request to the last — scrapers never see series appear mid-flight.
var endpointNames = []string{"run", "sweep", "stats", "runs", "metrics", "healthz"}

// endpointMetrics is one endpoint's request counter and latency histogram.
type endpointMetrics struct {
	name      string
	requests  metrics.Counter
	latencyNS metrics.Histogram
}

// serverMetrics is the service's own instrument block, registered under the
// "server" group of the service registry and rendered by GET /metrics via
// metrics.WriteProm. Instruments are updated from request goroutines; every
// operation is atomic, so mid-scrape reads are torn-free (the same weak
// consistency contract as the engine's instruments).
type serverMetrics struct {
	endpoints []*endpointMetrics

	requests       metrics.Counter // scenario executions requested (run + sweep fan-out)
	runs           metrics.Counter // fresh simulations executed
	errors         metrics.Counter // failed requests (bad specs + failed runs)
	cacheHits      metrics.Counter // served from cache or an in-flight duplicate
	cacheMisses    metrics.Counter // forced a fresh simulation
	cacheEvictions metrics.Counter // results dropped by the LRU bounds
	dedupJoins     metrics.Counter // requests that joined an in-flight runner

	cacheEntries metrics.Gauge // resident cached results
	cacheBytes   metrics.Gauge // resident cached payload bytes

	queueWaitNS metrics.Histogram // fresh runs: wait for a worker slot
	execNS      metrics.Histogram // fresh runs: scenario.Run wall time

	// collectiveIterNS pools collective iteration times (virtual ns) across
	// every fresh run with a workload.collective — the service-level view of
	// closed-loop workload latency, exported as
	// approxsim_server_collective_iter_ns on /metrics.
	collectiveIterNS metrics.Histogram
}

func newServerMetrics() *serverMetrics {
	sm := &serverMetrics{}
	for _, name := range endpointNames {
		sm.endpoints = append(sm.endpoints, &endpointMetrics{name: name})
	}
	return sm
}

func (sm *serverMetrics) endpoint(name string) *endpointMetrics {
	for _, e := range sm.endpoints {
		if e.name == name {
			return e
		}
	}
	return nil
}

// CollectMetrics implements metrics.Collector.
func (sm *serverMetrics) CollectMetrics(e *metrics.Emitter) {
	e.Counter("requests", sm.requests.Value())
	e.Counter("runs", sm.runs.Value())
	e.Counter("errors", sm.errors.Value())
	e.Counter("cache_hits", sm.cacheHits.Value())
	e.Counter("cache_misses", sm.cacheMisses.Value())
	e.Counter("cache_evictions", sm.cacheEvictions.Value())
	e.Counter("dedup_joins", sm.dedupJoins.Value())
	e.Gauge("cache_entries", sm.cacheEntries.Value())
	e.Gauge("cache_bytes", sm.cacheBytes.Value())
	e.Histogram("queue_wait_ns", &sm.queueWaitNS)
	e.Histogram("exec_ns", &sm.execNS)
	e.Histogram("collective_iter_ns", &sm.collectiveIterNS)
	for _, ep := range sm.endpoints {
		e.Counter("http_requests_"+ep.name, ep.requests.Value())
		e.Histogram("http_latency_ns_"+ep.name, &ep.latencyNS)
	}
}

// instrument wraps an endpoint handler with its request counter, latency
// histogram, and (when configured) one structured log line per HTTP request.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	ep := s.sm.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		d := time.Since(start)
		ep.requests.Inc()
		ep.latencyNS.Observe(uint64(d.Nanoseconds()))
		s.log.httpLine(r, name, sw.status, d)
	}
}

// statusWriter captures the response status for instrumentation and logging.
// It forwards Flush so SSE streaming keeps working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handleMetrics serves the service registry in Prometheus text exposition
// format: the server group above, the baseline pool bridge, and the run
// registry occupancy gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = metrics.WriteProm(w, s.reg.Snapshot(), "approxsim")
}
