package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"approxsim/internal/des"
	"approxsim/internal/metrics"
	"approxsim/internal/obs"
)

// RunState is one run's lifecycle position. Runs move strictly
// queued → running → done|failed; cache hits and dedup joins jump straight
// to their terminal state (they never occupy a worker).
type RunState string

// Run lifecycle states.
const (
	RunQueued  RunState = "queued"
	RunRunning RunState = "running"
	RunDone    RunState = "done"
	RunFailed  RunState = "failed"
)

// Run dispositions: how the response was produced.
const (
	// DispositionCold is a fresh simulation built from scratch.
	DispositionCold = "cold"
	// DispositionFork is a fresh simulation that forked a warmed baseline.
	DispositionFork = "fork"
	// DispositionCached was served from the result cache.
	DispositionCached = "cached"
	// DispositionDedup joined an in-flight duplicate and was served its bytes.
	DispositionDedup = "dedup"
)

// RunRecord is the JSON view of one run — the GET /v1/runs payload element.
// For in-flight runs CommittedMS and Events are live gauge readings
// (monotonically advancing committed virtual time, bridged from the engine's
// committed-time clock); for terminal runs they are the final figures.
type RunRecord struct {
	ID    string   `json:"id"`
	Key   string   `json:"key"`
	Mode  string   `json:"mode"`
	State RunState `json:"state"`
	// Disposition is set at the terminal transition: cold | fork | cached |
	// dedup.
	Disposition string `json:"disposition,omitempty"`
	// HorizonMS is the run's virtual-time target; CommittedMS advances toward
	// it while the run executes.
	HorizonMS   float64 `json:"horizon_ms"`
	CommittedMS float64 `json:"committed_ms"`
	Events      uint64  `json:"events"`
	// QueueWaitMS is time spent waiting for a worker slot (0 for cache hits).
	QueueWaitMS float64 `json:"queue_wait_ms"`
	// ExecMS is scenario.Run wall time (terminal fresh runs only).
	ExecMS float64 `json:"exec_ms,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// run is one registry entry: the published record plus the live machinery
// (progress gauges, completion channel) the record is derived from.
type run struct {
	mu   sync.Mutex
	rec  RunRecord
	prog *obs.Progress

	enqueuedAt time.Time
	done       chan struct{} // closed at the terminal transition
}

// snapshot returns the record, overlaying live progress while running.
func (r *run) snapshot() RunRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := r.rec
	if rec.State == RunRunning && r.prog != nil {
		rec.CommittedMS = float64(r.prog.Committed()) / float64(des.Millisecond)
		rec.Events = r.prog.Events()
	}
	return rec
}

// markRunning transitions queued → running and attaches the progress gauges.
func (r *run) markRunning(queueWait time.Duration, prog *obs.Progress) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rec.State = RunRunning
	r.rec.QueueWaitMS = ms(queueWait)
	r.prog = prog
}

// finish records the terminal transition and wakes watchers.
func (r *run) finish(state RunState, disposition string, exec time.Duration, committedMS float64, events uint64, errMsg string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rec.State == RunDone || r.rec.State == RunFailed {
		return
	}
	r.rec.State = state
	r.rec.Disposition = disposition
	r.rec.ExecMS = ms(exec)
	r.rec.CommittedMS = committedMS
	r.rec.Events = events
	r.rec.Error = errMsg
	r.prog = nil
	close(r.done)
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// runRegistry tracks every accepted run, live and recent. Terminal records
// are retained up to the configured bound (in-flight runs are never evicted),
// so /v1/runs doubles as a short service history.
type runRegistry struct {
	mu    sync.Mutex
	seq   uint64
	keep  int
	runs  map[string]*run
	order []string // insertion order; order[0] is the oldest
}

func newRunRegistry(keep int) *runRegistry {
	if keep < 1 {
		keep = 1
	}
	return &runRegistry{keep: keep, runs: make(map[string]*run)}
}

// begin registers a new queued run and returns its entry.
func (g *runRegistry) begin(key, mode string, horizonMS float64) *run {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.seq++
	r := &run{
		rec: RunRecord{
			ID:        fmt.Sprintf("run-%06d", g.seq),
			Key:       key,
			Mode:      mode,
			State:     RunQueued,
			HorizonMS: horizonMS,
		},
		enqueuedAt: time.Now(),
		done:       make(chan struct{}),
	}
	g.runs[r.rec.ID] = r
	g.order = append(g.order, r.rec.ID)
	// Evict the oldest terminal records beyond the bound.
	for len(g.order) > g.keep {
		evicted := false
		for i, id := range g.order {
			old := g.runs[id]
			old.mu.Lock()
			terminal := old.rec.State == RunDone || old.rec.State == RunFailed
			old.mu.Unlock()
			if terminal {
				delete(g.runs, id)
				g.order = append(g.order[:i], g.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything is live; keep them all
		}
	}
	return r
}

// get returns the run with the given ID, if present.
func (g *runRegistry) get(id string) (*run, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	r, ok := g.runs[id]
	return r, ok
}

// list snapshots every retained record, newest first.
func (g *runRegistry) list() []RunRecord {
	g.mu.Lock()
	ordered := make([]*run, 0, len(g.order))
	for i := len(g.order) - 1; i >= 0; i-- {
		ordered = append(ordered, g.runs[g.order[i]])
	}
	g.mu.Unlock()
	out := make([]RunRecord, 0, len(ordered))
	for _, r := range ordered {
		out = append(out, r.snapshot())
	}
	return out
}

// CollectMetrics implements metrics.Collector: registry occupancy by state.
func (g *runRegistry) CollectMetrics(e *metrics.Emitter) {
	g.mu.Lock()
	entries := make([]*run, 0, len(g.runs))
	for _, r := range g.runs {
		entries = append(entries, r)
	}
	total := g.seq
	g.mu.Unlock()
	var queued, running int64
	for _, r := range entries {
		switch r.snapshot().State {
		case RunQueued:
			queued++
		case RunRunning:
			running++
		}
	}
	e.Counter("started", total)
	e.Gauge("queued", queued)
	e.Gauge("running", running)
	e.Gauge("retained", int64(len(entries)))
}

// RunsResponse is the GET /v1/runs payload.
type RunsResponse struct {
	Runs []RunRecord `json:"runs"`
}

// handleRuns serves GET /v1/runs: every retained record, newest first.
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, RunsResponse{Runs: s.runs.list()})
}

// handleRunByID serves GET /v1/runs/{id} (one record, live progress for
// in-flight runs) and GET /v1/runs/{id}?watch=1 (SSE stream of records until
// the run reaches a terminal state).
func (s *Server) handleRunByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/runs/")
	ru, ok := s.runs.get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("unknown run %q", id)})
		return
	}
	if r.URL.Query().Get("watch") != "1" {
		writeJSON(w, http.StatusOK, ru.snapshot())
		return
	}
	s.watchRun(w, r, ru)
}

// watchPeriod is the SSE progress cadence. A var so tests can tighten it.
var watchPeriod = 50 * time.Millisecond

// watchRun streams one run's records as Server-Sent Events: one "progress"
// event per tick while the run executes, then a final "result" event at the
// terminal state. The stream ends when the run does (or the client leaves).
func (s *Server) watchRun(w http.ResponseWriter, r *http.Request, ru *run) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusOK, ru.snapshot())
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	emit := func(event string) {
		blob, err := json.Marshal(ru.snapshot())
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, blob)
		fl.Flush()
	}
	emit("progress")
	ticker := time.NewTicker(watchPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-ru.done:
			emit("result")
			return
		case <-ticker.C:
			emit("progress")
		}
	}
}
