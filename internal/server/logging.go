package server

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"
)

// requestLog writes request-scoped structured logs as JSONL: one "http" line
// per HTTP request (method, path, endpoint, status, duration) and one "run"
// line per scenario execution (run ID, spec hash, outcome, cache/fork
// disposition, queue-wait and exec durations). Lines are self-describing via
// the "kind" field so one stream can carry both. A nil *requestLog is a
// no-op, which is how logging stays free when not configured.
type requestLog struct {
	mu sync.Mutex
	w  io.Writer
}

func newRequestLog(w io.Writer) *requestLog {
	if w == nil {
		return nil
	}
	return &requestLog{w: w}
}

// httpLogLine is one HTTP request.
type httpLogLine struct {
	TS       string  `json:"ts"`
	Kind     string  `json:"kind"` // "http"
	Method   string  `json:"method"`
	Path     string  `json:"path"`
	Endpoint string  `json:"endpoint"`
	Status   int     `json:"status"`
	DurMS    float64 `json:"dur_ms"`
}

// runLogLine is one scenario execution.
type runLogLine struct {
	TS          string  `json:"ts"`
	Kind        string  `json:"kind"` // "run"
	Method      string  `json:"method"`
	Endpoint    string  `json:"endpoint"` // "run" or "sweep"
	RunID       string  `json:"run_id"`
	Key         string  `json:"key"`
	Mode        string  `json:"mode"`
	State       string  `json:"state"`       // done | failed
	Disposition string  `json:"disposition"` // cold | fork | cached | dedup
	QueueWaitMS float64 `json:"queue_wait_ms"`
	ExecMS      float64 `json:"exec_ms"`
	CommittedMS float64 `json:"committed_ms"`
	Events      uint64  `json:"events"`
	Error       string  `json:"error,omitempty"`
}

// write marshals v and appends it as one line. Serialized by the mutex so
// concurrent requests never interleave bytes.
func (l *requestLog) write(v any) {
	if l == nil {
		return
	}
	blob, err := json.Marshal(v)
	if err != nil {
		return
	}
	blob = append(blob, '\n')
	l.mu.Lock()
	_, _ = l.w.Write(blob)
	l.mu.Unlock()
}

func logTS() string { return time.Now().UTC().Format(time.RFC3339Nano) }

// httpLine logs one completed HTTP request.
func (l *requestLog) httpLine(r *http.Request, endpoint string, status int, d time.Duration) {
	if l == nil {
		return
	}
	l.write(httpLogLine{
		TS:       logTS(),
		Kind:     "http",
		Method:   r.Method,
		Path:     r.URL.Path,
		Endpoint: endpoint,
		Status:   status,
		DurMS:    ms(d),
	})
}

// runLine logs one scenario execution from its terminal record.
func (l *requestLog) runLine(endpoint string, rec RunRecord) {
	if l == nil {
		return
	}
	l.write(runLogLine{
		TS:          logTS(),
		Kind:        "run",
		Method:      http.MethodPost,
		Endpoint:    endpoint,
		RunID:       rec.ID,
		Key:         rec.Key,
		Mode:        rec.Mode,
		State:       string(rec.State),
		Disposition: rec.Disposition,
		QueueWaitMS: rec.QueueWaitMS,
		ExecMS:      rec.ExecMS,
		CommittedMS: rec.CommittedMS,
		Events:      rec.Events,
		Error:       rec.Error,
	})
}
