package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// getJSON GETs path and decodes the reply into out, returning the status.
func getJSON(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s reply: %v", path, err)
	}
	return resp.StatusCode
}

// midFlightSpec takes a few hundred ms of wall time — long enough to observe
// mid-flight from another goroutine at millisecond polling cadence.
const midFlightSpec = `{"mode":"pdes","topology":{"racks":4},"workload":{"load":0.5},"lps":2,"seed":42,"horizon_ms":40}`

// TestMetricsExposition: GET /metrics renders the service registry in
// Prometheus text format, with the server, pool, and run-registry series all
// present and consistent with /v1/stats.
func TestMetricsExposition(t *testing.T) {
	s, ts := newTestServer(t)
	body := fmt.Sprintf(pdesSpec, 31, "")
	var rr RunResponse
	if code := post(t, ts, "/v1/run", body, &rr); code != http.StatusOK {
		t.Fatalf("POST: %d (%s)", code, rr.Error)
	}
	if code := post(t, ts, "/v1/run", body, &rr); code != http.StatusOK {
		t.Fatalf("repeat POST: %d (%s)", code, rr.Error)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(blob)

	st := s.Stats()
	for _, want := range []string{
		fmt.Sprintf("approxsim_server_requests %d\n", st.Requests),
		fmt.Sprintf("approxsim_server_cache_hits %d\n", st.CacheHits),
		fmt.Sprintf("approxsim_server_cache_misses %d\n", st.CacheMisses),
		fmt.Sprintf("approxsim_server_cache_bytes %d\n", st.CacheBytes),
		fmt.Sprintf("approxsim_server_runs %d\n", st.Runs),
		fmt.Sprintf("approxsim_pool_baseline_builds %d\n", st.Pool.Builds),
		"approxsim_runs_started 2\n",
		"approxsim_runs_retained 2\n",
		"# TYPE approxsim_server_exec_ns summary\n",
		`approxsim_server_exec_ns{quantile="0.99"}`,
		"approxsim_server_http_requests_run 2\n",
		"# TYPE approxsim_server_http_latency_ns_run summary\n",
		// Endpoint series exist before their first request — fixed schema.
		"approxsim_server_http_requests_sweep 0\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", text)
	}
}

// TestRunRegistryLifecycle: every accepted spec gets a run record reachable
// by ID, with disposition and final figures; the list endpoint is
// newest-first; unknown IDs 404.
func TestRunRegistryLifecycle(t *testing.T) {
	_, ts := newTestServer(t)
	body := fmt.Sprintf(pdesSpec, 63, "")

	var first, second RunResponse
	post(t, ts, "/v1/run", body, &first)
	post(t, ts, "/v1/run", body, &second)
	if first.RunID == "" || second.RunID == "" || first.RunID == second.RunID {
		t.Fatalf("run IDs: %q, %q", first.RunID, second.RunID)
	}

	var rec RunRecord
	if code := getJSON(t, ts, "/v1/runs/"+first.RunID, &rec); code != http.StatusOK {
		t.Fatalf("GET run: %d", code)
	}
	if rec.State != RunDone || rec.Disposition != DispositionCold {
		t.Fatalf("first run record: state %s disposition %s", rec.State, rec.Disposition)
	}
	if rec.Key != first.Key || rec.Mode != "pdes" {
		t.Fatalf("record identity: key %q mode %q", rec.Key, rec.Mode)
	}
	if rec.CommittedMS < rec.HorizonMS || rec.Events == 0 || rec.ExecMS <= 0 {
		t.Fatalf("final figures: %+v", rec)
	}

	if code := getJSON(t, ts, "/v1/runs/"+second.RunID, &rec); code != http.StatusOK {
		t.Fatalf("GET cached run: %d", code)
	}
	if rec.State != RunDone || rec.Disposition != DispositionCached {
		t.Fatalf("cached run record: state %s disposition %s", rec.State, rec.Disposition)
	}

	var list RunsResponse
	getJSON(t, ts, "/v1/runs", &list)
	if len(list.Runs) != 2 || list.Runs[0].ID != second.RunID || list.Runs[1].ID != first.RunID {
		t.Fatalf("list not newest-first: %+v", list.Runs)
	}

	var missing map[string]string
	if code := getJSON(t, ts, "/v1/runs/run-999999", &missing); code != http.StatusNotFound {
		t.Fatalf("unknown run: %d", code)
	}
}

// TestRunObservedMidFlight is the satellite e2e test: a run polled via
// GET /v1/runs/{id} while executing reports monotonically advancing
// committed virtual time, and the record settles to the final figures.
func TestRunObservedMidFlight(t *testing.T) {
	_, ts := newTestServer(t)

	respCh := make(chan RunResponse, 1)
	go func() {
		var rr RunResponse
		post(t, ts, "/v1/run", midFlightSpec, &rr)
		respCh <- rr
	}()

	// Find the run's ID via the list endpoint; the discovery reading is the
	// first progress sample if the run is already executing.
	var samples []RunRecord
	var id string
	deadline := time.Now().Add(30 * time.Second)
	for id == "" {
		if time.Now().After(deadline) {
			t.Fatal("run never appeared in /v1/runs")
		}
		var list RunsResponse
		getJSON(t, ts, "/v1/runs", &list)
		if len(list.Runs) > 0 {
			id = list.Runs[0].ID
			if list.Runs[0].State == RunRunning {
				samples = append(samples, list.Runs[0])
			}
		}
	}

	// Poll the record until terminal, collecting progress samples. No sleep:
	// on a starved single-CPU box each round trip already takes a while, and
	// the run outlasts many of them.
	var final RunRecord
	for {
		if time.Now().After(deadline) {
			t.Fatal("run never finished")
		}
		var rec RunRecord
		getJSON(t, ts, "/v1/runs/"+id, &rec)
		if rec.State == RunDone || rec.State == RunFailed {
			final = rec
			break
		}
		if rec.State == RunRunning {
			samples = append(samples, rec)
		}
	}

	if len(samples) < 2 {
		t.Fatalf("only %d mid-flight samples; spec too fast to observe", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].CommittedMS < samples[i-1].CommittedMS {
			t.Fatalf("committed time regressed: %v then %v", samples[i-1].CommittedMS, samples[i].CommittedMS)
		}
		if samples[i].Events < samples[i-1].Events {
			t.Fatalf("event count regressed: %d then %d", samples[i-1].Events, samples[i].Events)
		}
	}
	if last := samples[len(samples)-1]; last.CommittedMS <= samples[0].CommittedMS {
		t.Fatalf("committed time never advanced mid-flight: %v .. %v over %d samples",
			samples[0].CommittedMS, last.CommittedMS, len(samples))
	}

	rr := <-respCh
	if rr.Error != "" {
		t.Fatalf("run failed: %s", rr.Error)
	}
	if final.State != RunDone || final.Disposition != DispositionCold {
		t.Fatalf("final record: %+v", final)
	}
	if final.CommittedMS < final.HorizonMS || final.Events == 0 {
		t.Fatalf("final record did not settle to run totals: %+v", final)
	}
	if final.CommittedMS < samples[len(samples)-1].CommittedMS {
		t.Fatalf("final committed %v below last observed %v", final.CommittedMS, samples[len(samples)-1].CommittedMS)
	}
}

// TestRunWatchSSE: GET /v1/runs/{id}?watch=1 streams progress events and a
// terminal result event, with committed time non-decreasing across frames.
func TestRunWatchSSE(t *testing.T) {
	old := watchPeriod
	watchPeriod = 5 * time.Millisecond
	defer func() { watchPeriod = old }()

	_, ts := newTestServer(t)
	respCh := make(chan RunResponse, 1)
	go func() {
		var rr RunResponse
		post(t, ts, "/v1/run", midFlightSpec, &rr)
		respCh <- rr
	}()

	var id string
	deadline := time.Now().Add(10 * time.Second)
	for id == "" {
		if time.Now().After(deadline) {
			t.Fatal("run never appeared")
		}
		var list RunsResponse
		getJSON(t, ts, "/v1/runs", &list)
		if len(list.Runs) > 0 {
			id = list.Runs[0].ID
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// The stream ends when the run does; collect every frame.
	var events []string
	var records []RunRecord
	sc := bufio.NewScanner(resp.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var rec RunRecord
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &rec); err != nil {
				t.Fatalf("bad SSE data: %v", err)
			}
			events = append(events, event)
			records = append(records, rec)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if len(events) < 2 || events[len(events)-1] != "result" {
		t.Fatalf("stream frames %v, want progress frames then one result", events)
	}
	for _, e := range events[:len(events)-1] {
		if e != "progress" {
			t.Fatalf("unexpected event %q before result", e)
		}
	}
	for i := 1; i < len(records); i++ {
		if records[i].CommittedMS < records[i-1].CommittedMS {
			t.Fatalf("SSE committed regressed: %v then %v", records[i-1].CommittedMS, records[i].CommittedMS)
		}
	}
	if fin := records[len(records)-1]; fin.State != RunDone || fin.CommittedMS < fin.HorizonMS {
		t.Fatalf("terminal SSE record: %+v", fin)
	}
	if rr := <-respCh; rr.Error != "" {
		t.Fatalf("run failed: %s", rr.Error)
	}
}

// TestHealthzLifecycle: 503 before Start, 200 while serving, 503 again once
// shutdown begins.
func TestHealthzLifecycle(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	check := func(wantCode int, wantStatus string) {
		t.Helper()
		var body map[string]string
		if code := getJSON(t, ts, "/healthz", &body); code != wantCode {
			t.Fatalf("healthz: %d, want %d", code, wantCode)
		}
		if body["status"] != wantStatus {
			t.Fatalf("healthz body %v, want status %q", body, wantStatus)
		}
	}
	check(http.StatusServiceUnavailable, "starting")
	s.Start()
	check(http.StatusOK, "ok")
	s.BeginShutdown()
	check(http.StatusServiceUnavailable, "shutting_down")
}

// TestCacheLRUEviction: the result cache evicts least-recently-used, a hit
// protects its entry, and evicted specs re-simulate.
func TestCacheLRUEviction(t *testing.T) {
	s := New(Config{Workers: 2, CacheSize: 2, MaxBaselines: 4})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	specA := fmt.Sprintf(pdesSpec, 1, "")
	specB := fmt.Sprintf(pdesSpec, 2, "")
	specC := fmt.Sprintf(pdesSpec, 3, "")

	var rr RunResponse
	post(t, ts, "/v1/run", specA, &rr) // cache [A]
	post(t, ts, "/v1/run", specB, &rr) // cache [A B]
	post(t, ts, "/v1/run", specA, &rr) // hit; promotes A over B
	if !rr.Cached {
		t.Fatal("expected a cache hit for A")
	}
	post(t, ts, "/v1/run", specC, &rr) // evicts B (LRU), not A

	post(t, ts, "/v1/run", specA, &rr)
	if !rr.Cached {
		t.Fatal("A was evicted despite being recently used")
	}
	post(t, ts, "/v1/run", specB, &rr)
	if rr.Cached {
		t.Fatal("B survived eviction in a cache of 2 after A was promoted")
	}

	st := s.Stats()
	if st.CacheEvictions < 2 { // B once, then A or C when B re-entered
		t.Fatalf("evictions = %d, want >= 2", st.CacheEvictions)
	}
	if st.CacheEntries != 2 {
		t.Fatalf("entries = %d, want 2", st.CacheEntries)
	}
	if st.CacheBytes <= 0 {
		t.Fatalf("cache bytes = %d", st.CacheBytes)
	}
}

// TestCacheByteBound: a byte bound tighter than one payload leaves exactly
// the newest entry resident (a sole oversized entry is never self-evicted).
func TestCacheByteBound(t *testing.T) {
	s := New(Config{Workers: 2, CacheSize: 32, CacheBytes: 1, MaxBaselines: 4})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var rr RunResponse
	post(t, ts, "/v1/run", fmt.Sprintf(pdesSpec, 1, ""), &rr)
	post(t, ts, "/v1/run", fmt.Sprintf(pdesSpec, 2, ""), &rr)

	st := s.Stats()
	if st.CacheEntries != 1 {
		t.Fatalf("entries = %d, want the newest entry alone", st.CacheEntries)
	}
	if st.CacheEvictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.CacheEvictions)
	}
	// The survivor must still serve hits.
	post(t, ts, "/v1/run", fmt.Sprintf(pdesSpec, 2, ""), &rr)
	if !rr.Cached {
		t.Fatal("resident oversized entry missed")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the request log writes from
// handler goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestLogJSONL: with RequestLog configured the server emits one parseable
// "http" line per request and one "run" line per execution, carrying run ID,
// spec hash, and disposition.
func TestRequestLogJSONL(t *testing.T) {
	var buf syncBuffer
	s := New(Config{Workers: 2, RequestLog: &buf})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := fmt.Sprintf(pdesSpec, 77, "")
	var first, second RunResponse
	post(t, ts, "/v1/run", body, &first)
	post(t, ts, "/v1/run", body, &second)

	// The http line lands after the response is sent; wait for both kinds.
	var runLines []runLogLine
	var httpLines []httpLogLine
	deadline := time.Now().Add(5 * time.Second)
	for {
		runLines, httpLines = nil, nil
		for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
			if line == "" {
				continue
			}
			var kind struct {
				Kind string `json:"kind"`
			}
			if err := json.Unmarshal([]byte(line), &kind); err != nil {
				t.Fatalf("unparseable log line %q: %v", line, err)
			}
			switch kind.Kind {
			case "run":
				var rl runLogLine
				if err := json.Unmarshal([]byte(line), &rl); err != nil {
					t.Fatal(err)
				}
				runLines = append(runLines, rl)
			case "http":
				var hl httpLogLine
				if err := json.Unmarshal([]byte(line), &hl); err != nil {
					t.Fatal(err)
				}
				httpLines = append(httpLines, hl)
			default:
				t.Fatalf("log line of unknown kind %q", line)
			}
		}
		if len(runLines) >= 2 && len(httpLines) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("log incomplete: %d run lines, %d http lines", len(runLines), len(httpLines))
		}
		time.Sleep(2 * time.Millisecond)
	}

	cold, cached := runLines[0], runLines[1]
	if cold.RunID != first.RunID || cold.Disposition != DispositionCold || cold.State != "done" {
		t.Fatalf("cold run line: %+v", cold)
	}
	if cold.Key != first.Key || cold.ExecMS <= 0 || cold.Events == 0 {
		t.Fatalf("cold run line figures: %+v", cold)
	}
	if cached.RunID != second.RunID || cached.Disposition != DispositionCached {
		t.Fatalf("cached run line: %+v", cached)
	}
	for _, hl := range httpLines {
		if hl.Endpoint != "run" || hl.Method != http.MethodPost || hl.Status != http.StatusOK || hl.Path != "/v1/run" {
			t.Fatalf("http line: %+v", hl)
		}
	}
}

// TestConcurrentObservers exercises the registry, metrics, and stats
// endpoints while runs execute and duplicate posts dedup — the race-detector
// workout for the observability plumbing.
func TestConcurrentObservers(t *testing.T) {
	s, ts := newTestServer(t)

	stopObs := make(chan struct{})
	var obsWG sync.WaitGroup
	for _, path := range []string{"/v1/runs", "/metrics", "/v1/stats"} {
		obsWG.Add(1)
		go func(path string) {
			defer obsWG.Done()
			for {
				select {
				case <-stopObs:
					return
				default:
				}
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(path)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Four distinct specs, each posted twice: exercises cold runs,
			// dedup joins, and cache hits under load.
			var rr RunResponse
			post(t, ts, "/v1/run", fmt.Sprintf(pdesSpec, 10+i%4, ""), &rr)
		}(i)
	}
	wg.Wait()
	close(stopObs)
	obsWG.Wait()

	st := s.Stats()
	if st.Runs != 4 {
		t.Fatalf("runs = %d, want 4 (duplicates must dedup or hit cache)", st.Runs)
	}
	if st.CacheHits != 4 { // dedup joins count as hits: same bytes, no re-run
		t.Fatalf("cache hits = %d, want 4", st.CacheHits)
	}
	var list RunsResponse
	getJSON(t, ts, "/v1/runs", &list)
	if len(list.Runs) != 8 {
		t.Fatalf("registry retained %d records, want 8", len(list.Runs))
	}
}
