// Package server exposes the scenario library as a long-running simulation
// service: POST a scenario.Spec as JSON, get its deterministic metrics back.
//
// The server exists for the sweep workflow the paper motivates — many what-if
// variants of one baseline — and exploits determinism twice:
//
//   - Result cache: results are keyed by the spec's canonical hash and the
//     cached value is the marshalled metrics bytes themselves, so a repeated
//     spec is served bit-identically without re-simulating. In-flight
//     deduplication (one runner per key, followers wait) extends the same
//     guarantee to concurrent duplicates.
//   - Snapshot-fork reuse: pdes-mode specs run through a scenario.Pool, so a
//     fault sweep's variants fork one warmed baseline instead of each
//     cold-starting (see internal/scenario).
//
// Endpoints (all JSON):
//
//	POST /v1/run    one scenario.Spec        -> RunResponse
//	POST /v1/sweep  {"scenarios":[Spec,...]} -> SweepResponse
//	GET  /v1/stats  service counters (requests, cache, pool, workers)
//	GET  /healthz   liveness probe
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"approxsim/internal/scenario"
)

// Config sizes the service.
type Config struct {
	// Workers bounds concurrently executing simulations (default 2). Requests
	// beyond it queue; duplicates of an in-flight spec never occupy a worker.
	Workers int
	// CacheSize bounds the result cache in entries (default 256, FIFO).
	CacheSize int
	// MaxBaselines bounds the warmed-baseline pool (default 8, FIFO).
	MaxBaselines int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.MaxBaselines <= 0 {
		c.MaxBaselines = 8
	}
	return c
}

// Server is the scenario service. Create with New, serve via Handler.
type Server struct {
	cfg  Config
	pool *scenario.Pool
	sem  chan struct{} // worker slots

	mu       sync.Mutex
	cache    map[string]*entry // key -> completed result
	order    []string          // FIFO eviction order
	inflight map[string]*entry // key -> running computation

	requests  atomic.Uint64
	cacheHits atomic.Uint64
	runs      atomic.Uint64
	errors    atomic.Uint64
}

// entry is one spec's computed (or in-flight) result. Completed entries are
// immutable: metrics holds the exact bytes every future hit is served.
type entry struct {
	done    chan struct{}
	metrics json.RawMessage
	perf    scenario.Perf
	err     error
}

// New creates a Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:      cfg,
		pool:     scenario.NewPool(cfg.MaxBaselines),
		sem:      make(chan struct{}, cfg.Workers),
		cache:    make(map[string]*entry),
		inflight: make(map[string]*entry),
	}
}

// RunResponse is the per-scenario reply.
type RunResponse struct {
	// Key is the spec's canonical hash — the cache identity.
	Key string `json:"key"`
	// Cached reports the metrics were served from the result cache (or from
	// an in-flight duplicate) rather than a fresh simulation.
	Cached bool `json:"cached"`
	// ForkReused reports the fresh simulation forked a warmed baseline
	// (never set on cached replies; the perf block is the runner's).
	ForkReused bool `json:"fork_reused,omitempty"`
	// Metrics is the deterministic result block, byte-identical for every
	// response with the same key.
	Metrics json.RawMessage `json:"metrics,omitempty"`
	// Perf describes the run that produced the metrics (fresh runs only).
	Perf *scenario.Perf `json:"perf,omitempty"`
	// Error is set instead of Metrics when the scenario failed.
	Error string `json:"error,omitempty"`
}

// SweepResponse is the /v1/sweep reply: per-scenario results in request
// order, plus a stats snapshot taken after the sweep.
type SweepResponse struct {
	Results []RunResponse `json:"results"`
	Stats   Stats         `json:"stats"`
}

// Stats is the /v1/stats payload.
type Stats struct {
	Requests     uint64             `json:"requests"`
	CacheHits    uint64             `json:"cache_hits"`
	CacheEntries int                `json:"cache_entries"`
	Runs         uint64             `json:"runs"`
	Errors       uint64             `json:"errors"`
	Workers      int                `json:"workers"`
	Pool         scenario.PoolStats `json:"pool"`
}

// Handler returns the service's http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	return mux
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	entries := len(s.cache)
	s.mu.Unlock()
	return Stats{
		Requests:     s.requests.Load(),
		CacheHits:    s.cacheHits.Load(),
		CacheEntries: entries,
		Runs:         s.runs.Load(),
		Errors:       s.errors.Load(),
		Workers:      s.cfg.Workers,
		Pool:         s.pool.Stats(),
	}
}

// decodeSpec parses and vets one spec from a request body decoder. Unknown
// fields are rejected: a typo'd field would otherwise be silently dropped
// from the canonical form and alias the request onto the wrong cache key.
func decodeSpec(dec *json.Decoder) (scenario.Spec, error) {
	var sp scenario.Spec
	if err := dec.Decode(&sp); err != nil {
		return sp, fmt.Errorf("bad scenario JSON: %w", err)
	}
	if err := sp.Validate(); err != nil {
		return sp, err
	}
	if sp.Capture != "" {
		// Boundary captures are in-memory training artifacts; they have no
		// JSON representation and no business being cached.
		return sp, fmt.Errorf("capture is not available over the scenario service")
	}
	return sp, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	sp, err := decodeSpec(dec)
	if err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, RunResponse{Error: err.Error()})
		return
	}
	resp := s.execute(sp)
	status := http.StatusOK
	if resp.Error != "" {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Scenarios []json.RawMessage `json:"scenarios"`
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, RunResponse{Error: fmt.Sprintf("bad sweep JSON: %v", err)})
		return
	}
	if len(req.Scenarios) == 0 {
		s.errors.Add(1)
		writeJSON(w, http.StatusBadRequest, RunResponse{Error: "sweep needs at least one scenario"})
		return
	}
	// Scenarios run concurrently through the same worker-bounded path as
	// /v1/run; results come back in request order. A sweep sharing a
	// baseline family still serializes on the family's one system — the
	// fork reuse is what it gains.
	results := make([]RunResponse, len(req.Scenarios))
	var wg sync.WaitGroup
	for i, raw := range req.Scenarios {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		sp, err := decodeSpec(dec)
		if err != nil {
			s.errors.Add(1)
			results[i] = RunResponse{Error: err.Error()}
			continue
		}
		wg.Add(1)
		go func(i int, sp scenario.Spec) {
			defer wg.Done()
			results[i] = s.execute(sp)
		}(i, sp)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, SweepResponse{Results: results, Stats: s.Stats()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// execute runs one validated spec through cache, in-flight dedup, and the
// worker pool, and shapes the response.
func (s *Server) execute(sp scenario.Spec) RunResponse {
	s.requests.Add(1)
	key, err := sp.Key()
	if err != nil {
		s.errors.Add(1)
		return RunResponse{Error: err.Error()}
	}

	s.mu.Lock()
	if e, ok := s.cache[key]; ok {
		s.mu.Unlock()
		s.cacheHits.Add(1)
		return RunResponse{Key: key, Cached: true, Metrics: e.metrics}
	}
	if e, ok := s.inflight[key]; ok {
		// Duplicate of a running spec: wait for the runner, serve its bytes.
		s.mu.Unlock()
		<-e.done
		if e.err != nil {
			s.errors.Add(1)
			return RunResponse{Key: key, Error: e.err.Error()}
		}
		s.cacheHits.Add(1)
		return RunResponse{Key: key, Cached: true, Metrics: e.metrics}
	}
	e := &entry{done: make(chan struct{})}
	s.inflight[key] = e
	s.mu.Unlock()

	s.sem <- struct{}{} // acquire a worker slot
	res, err := scenario.Run(sp, scenario.WithPool(s.pool))
	<-s.sem
	s.runs.Add(1)

	if err == nil {
		// Marshal ONCE; these bytes are the cached value, so every hit —
		// concurrent or future — is bit-identical to this response.
		e.metrics, err = json.Marshal(res.Metrics)
	}
	e.err = err
	if err == nil {
		e.perf = res.Perf
	}
	close(e.done)

	s.mu.Lock()
	delete(s.inflight, key)
	if err == nil {
		s.cache[key] = e
		s.order = append(s.order, key)
		if len(s.order) > s.cfg.CacheSize {
			delete(s.cache, s.order[0])
			s.order = s.order[1:]
		}
	}
	s.mu.Unlock()

	if err != nil {
		s.errors.Add(1)
		return RunResponse{Key: key, Error: err.Error()}
	}
	return RunResponse{
		Key:        key,
		ForkReused: e.perf.ForkReused,
		Metrics:    e.metrics,
		Perf:       &e.perf,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
