// Package server exposes the scenario library as a long-running simulation
// service: POST a scenario.Spec as JSON, get its deterministic metrics back.
//
// The server exists for the sweep workflow the paper motivates — many what-if
// variants of one baseline — and exploits determinism twice:
//
//   - Result cache: results are keyed by the spec's canonical hash and the
//     cached value is the marshalled metrics bytes themselves, so a repeated
//     spec is served bit-identically without re-simulating. The cache is LRU
//     with both an entry and a byte bound. In-flight deduplication (one
//     runner per key, followers wait) extends the same guarantee to
//     concurrent duplicates.
//   - Snapshot-fork reuse: pdes-mode specs run through a scenario.Pool, so a
//     fault sweep's variants fork one warmed baseline instead of each
//     cold-starting (see internal/scenario).
//
// The service is fully observable. Every accepted spec becomes a run with an
// ID and a lifecycle record (queued → running → done/failed) carrying its
// spec hash, cache/fork disposition, queue-wait and exec durations, and —
// while in flight — live committed virtual time and event counts bridged
// from the engine's committed-time clock (obs.Progress). GET /metrics
// renders the service registry in Prometheus text exposition via
// metrics.WriteProm, and Config.RequestLog streams one structured JSON line
// per request and per run.
//
// Endpoints (JSON unless noted):
//
//	POST /v1/run          one scenario.Spec        -> RunResponse
//	POST /v1/sweep        {"scenarios":[Spec,...]} -> SweepResponse
//	GET  /v1/stats        service counters (requests, cache, pool, workers)
//	GET  /v1/runs         run registry, newest first
//	GET  /v1/runs/{id}    one run record (live progress while in flight)
//	GET  /v1/runs/{id}?watch=1  SSE stream of records until the run ends
//	GET  /metrics         Prometheus text exposition
//	GET  /healthz         readiness probe (503 before Start / after
//	                      BeginShutdown)
package server

import (
	"bytes"
	"container/list"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"approxsim/internal/des"
	"approxsim/internal/metrics"
	"approxsim/internal/obs"
	"approxsim/internal/scenario"
)

// Config sizes the service.
type Config struct {
	// Workers bounds concurrently executing simulations (default 2). Requests
	// beyond it queue; duplicates of an in-flight spec never occupy a worker.
	Workers int
	// CacheSize bounds the result cache in entries (default 256, LRU).
	CacheSize int
	// CacheBytes bounds the result cache by cached payload bytes
	// (default 64 MiB, LRU; a single oversized entry is allowed to stand
	// alone rather than thrash).
	CacheBytes int64
	// MaxBaselines bounds the warmed-baseline pool (default 8, LRU).
	MaxBaselines int
	// RunHistory bounds retained terminal run records (default 512).
	RunHistory int
	// RequestLog, when set, receives structured JSONL request logs: one
	// "http" line per request and one "run" line per scenario execution.
	RequestLog interface{ Write([]byte) (int, error) }
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MaxBaselines <= 0 {
		c.MaxBaselines = 8
	}
	if c.RunHistory <= 0 {
		c.RunHistory = 512
	}
	return c
}

// Server lifecycle states (readiness, not liveness).
const (
	stateCreated int32 = iota
	stateReady
	stateStopping
)

// Server is the scenario service. Create with New, mark ready with Start,
// serve via Handler, and call BeginShutdown before draining.
type Server struct {
	cfg  Config
	pool *scenario.Pool
	sem  chan struct{} // worker slots

	mu         sync.Mutex
	cache      map[string]*list.Element // key -> lru element (*cacheEntry)
	lru        *list.List               // front = most recently used
	cacheBytes int64
	inflight   map[string]*entry // key -> running computation

	state int32 // atomic: created -> ready -> stopping

	sm   *serverMetrics
	runs *runRegistry
	reg  *metrics.Registry
	log  *requestLog
}

// entry is one spec's computed (or in-flight) result. Completed entries are
// immutable: metrics holds the exact bytes every future hit is served.
type entry struct {
	done    chan struct{}
	metrics json.RawMessage
	perf    scenario.Perf
	err     error
}

// cacheEntry is one resident cache slot.
type cacheEntry struct {
	key  string
	e    *entry
	size int64
}

// New creates a Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		pool:     scenario.NewPool(cfg.MaxBaselines),
		sem:      make(chan struct{}, cfg.Workers),
		cache:    make(map[string]*list.Element),
		lru:      list.New(),
		inflight: make(map[string]*entry),
		sm:       newServerMetrics(),
		runs:     newRunRegistry(cfg.RunHistory),
		reg:      metrics.NewRegistry(),
		log:      newRequestLog(cfg.RequestLog),
	}
	s.reg.Register("server", s.sm)
	s.reg.Register("runs", s.runs)
	pool := s.pool
	s.reg.RegisterFunc("pool", func(e *metrics.Emitter) {
		st := pool.Stats()
		e.Counter("baseline_builds", st.Builds)
		e.Counter("fork_reuses", st.Reuses)
		e.Counter("evictions", st.Evictions)
		e.Gauge("baselines", int64(st.Baselines))
	})
	return s
}

// Registry exposes the service metrics registry (the /metrics source), so
// embedding processes can add their own collectors or snapshot it directly.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Start marks the worker pool live: /healthz turns 200. Call once the
// process is ready to accept traffic (readiness, distinct from liveness).
func (s *Server) Start() { atomic.StoreInt32(&s.state, stateReady) }

// BeginShutdown marks the service draining: /healthz turns 503 so load
// balancers stop routing new work while in-flight requests finish.
func (s *Server) BeginShutdown() { atomic.StoreInt32(&s.state, stateStopping) }

// RunResponse is the per-scenario reply.
type RunResponse struct {
	// Key is the spec's canonical hash — the cache identity.
	Key string `json:"key"`
	// RunID names this request's lifecycle record (GET /v1/runs/{id}).
	RunID string `json:"run_id,omitempty"`
	// Cached reports the metrics were served from the result cache (or from
	// an in-flight duplicate) rather than a fresh simulation.
	Cached bool `json:"cached"`
	// ForkReused reports the fresh simulation forked a warmed baseline
	// (never set on cached replies; the perf block is the runner's).
	ForkReused bool `json:"fork_reused,omitempty"`
	// Metrics is the deterministic result block, byte-identical for every
	// response with the same key.
	Metrics json.RawMessage `json:"metrics,omitempty"`
	// Perf describes the run that produced the metrics (fresh runs only).
	Perf *scenario.Perf `json:"perf,omitempty"`
	// Error is set instead of Metrics when the scenario failed.
	Error string `json:"error,omitempty"`
}

// SweepResponse is the /v1/sweep reply: per-scenario results in request
// order, plus a stats snapshot taken after the sweep.
type SweepResponse struct {
	Results []RunResponse `json:"results"`
	Stats   Stats         `json:"stats"`
}

// Stats is the /v1/stats payload.
type Stats struct {
	Requests       uint64             `json:"requests"`
	CacheHits      uint64             `json:"cache_hits"`
	CacheMisses    uint64             `json:"cache_misses"`
	CacheEntries   int                `json:"cache_entries"`
	CacheEvictions uint64             `json:"cache_evictions"`
	CacheBytes     int64              `json:"cache_bytes"`
	DedupJoins     uint64             `json:"dedup_joins"`
	Runs           uint64             `json:"runs"`
	Errors         uint64             `json:"errors"`
	Workers        int                `json:"workers"`
	Pool           scenario.PoolStats `json:"pool"`
}

// Handler returns the service's http.Handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.instrument("run", s.handleRun))
	mux.HandleFunc("/v1/sweep", s.instrument("sweep", s.handleSweep))
	mux.HandleFunc("/v1/stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("/v1/runs", s.instrument("runs", s.handleRuns))
	mux.HandleFunc("/v1/runs/", s.instrument("runs", s.handleRunByID))
	mux.HandleFunc("/metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("/healthz", s.instrument("healthz", s.handleHealthz))
	return mux
}

// handleHealthz is the readiness probe: 503 until Start, 503 again once
// BeginShutdown is called, 200 in between.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, body := http.StatusOK, `{"status":"ok"}`
	switch atomic.LoadInt32(&s.state) {
	case stateCreated:
		status, body = http.StatusServiceUnavailable, `{"status":"starting"}`
	case stateStopping:
		status, body = http.StatusServiceUnavailable, `{"status":"shutting_down"}`
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintln(w, body)
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	entries := len(s.cache)
	bytes := s.cacheBytes
	s.mu.Unlock()
	return Stats{
		Requests:       s.sm.requests.Value(),
		CacheHits:      s.sm.cacheHits.Value(),
		CacheMisses:    s.sm.cacheMisses.Value(),
		CacheEntries:   entries,
		CacheEvictions: s.sm.cacheEvictions.Value(),
		CacheBytes:     bytes,
		DedupJoins:     s.sm.dedupJoins.Value(),
		Runs:           s.sm.runs.Value(),
		Errors:         s.sm.errors.Value(),
		Workers:        s.cfg.Workers,
		Pool:           s.pool.Stats(),
	}
}

// decodeSpec parses and vets one spec from a request body decoder. Unknown
// fields are rejected: a typo'd field would otherwise be silently dropped
// from the canonical form and alias the request onto the wrong cache key.
func decodeSpec(dec *json.Decoder) (scenario.Spec, error) {
	var sp scenario.Spec
	if err := dec.Decode(&sp); err != nil {
		return sp, fmt.Errorf("bad scenario JSON: %w", err)
	}
	if err := sp.Validate(); err != nil {
		return sp, err
	}
	if sp.Capture != "" {
		// Boundary captures are in-memory training artifacts; they have no
		// JSON representation and no business being cached.
		return sp, fmt.Errorf("capture is not available over the scenario service")
	}
	return sp, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	sp, err := decodeSpec(dec)
	if err != nil {
		s.sm.errors.Inc()
		writeJSON(w, http.StatusBadRequest, RunResponse{Error: err.Error()})
		return
	}
	resp := s.execute(sp, "run")
	status := http.StatusOK
	if resp.Error != "" {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Scenarios []json.RawMessage `json:"scenarios"`
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.sm.errors.Inc()
		writeJSON(w, http.StatusBadRequest, RunResponse{Error: fmt.Sprintf("bad sweep JSON: %v", err)})
		return
	}
	if len(req.Scenarios) == 0 {
		s.sm.errors.Inc()
		writeJSON(w, http.StatusBadRequest, RunResponse{Error: "sweep needs at least one scenario"})
		return
	}
	// Scenarios run concurrently through the same worker-bounded path as
	// /v1/run; results come back in request order. A sweep sharing a
	// baseline family still serializes on the family's one system — the
	// fork reuse is what it gains.
	results := make([]RunResponse, len(req.Scenarios))
	var wg sync.WaitGroup
	for i, raw := range req.Scenarios {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		sp, err := decodeSpec(dec)
		if err != nil {
			s.sm.errors.Inc()
			results[i] = RunResponse{Error: err.Error()}
			continue
		}
		wg.Add(1)
		go func(i int, sp scenario.Spec) {
			defer wg.Done()
			results[i] = s.execute(sp, "sweep")
		}(i, sp)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, SweepResponse{Results: results, Stats: s.Stats()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// finishRun records a run's terminal state, logs its line, and keeps the
// done/failed counters.
func (s *Server) finishRun(ru *run, endpoint string, state RunState, disposition string,
	exec time.Duration, committedMS float64, events uint64, errMsg string) {
	ru.finish(state, disposition, exec, committedMS, events, errMsg)
	if state == RunFailed {
		s.sm.errors.Inc()
	}
	s.log.runLine(endpoint, ru.snapshot())
}

// execute runs one validated spec through cache, in-flight dedup, and the
// worker pool, and shapes the response. endpoint names the API surface the
// spec arrived on ("run" or "sweep"), for the run log.
func (s *Server) execute(sp scenario.Spec, endpoint string) RunResponse {
	s.sm.requests.Inc()
	key, err := sp.Key()
	if err != nil {
		s.sm.errors.Inc()
		return RunResponse{Error: err.Error()}
	}
	n := sp.Normalized()
	ru := s.runs.begin(key, n.Mode, n.HorizonMS)
	id := ru.rec.ID

	s.mu.Lock()
	if el, ok := s.cache[key]; ok {
		s.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry).e
		s.mu.Unlock()
		s.sm.cacheHits.Inc()
		// The cached result covered the full horizon; its event count was the
		// runner's, not this request's.
		s.finishRun(ru, endpoint, RunDone, DispositionCached, 0, n.HorizonMS, 0, "")
		return RunResponse{Key: key, RunID: id, Cached: true, Metrics: e.metrics}
	}
	if e, ok := s.inflight[key]; ok {
		// Duplicate of a running spec: wait for the runner, serve its bytes.
		s.mu.Unlock()
		s.sm.dedupJoins.Inc()
		<-e.done
		if e.err != nil {
			s.finishRun(ru, endpoint, RunFailed, DispositionDedup, 0, 0, 0, e.err.Error())
			return RunResponse{Key: key, RunID: id, Error: e.err.Error()}
		}
		s.sm.cacheHits.Inc()
		s.finishRun(ru, endpoint, RunDone, DispositionDedup, 0, n.HorizonMS, 0, "")
		return RunResponse{Key: key, RunID: id, Cached: true, Metrics: e.metrics}
	}
	e := &entry{done: make(chan struct{})}
	s.inflight[key] = e
	s.sm.cacheMisses.Inc()
	s.mu.Unlock()

	s.sem <- struct{}{} // acquire a worker slot
	queueWait := time.Since(ru.enqueuedAt)
	s.sm.queueWaitNS.Observe(uint64(queueWait.Nanoseconds()))
	prog := obs.NewProgress(des.Time(n.HorizonMS * float64(des.Millisecond)))
	ru.markRunning(queueWait, prog)

	start := time.Now()
	res, err := scenario.Run(sp, scenario.WithPool(s.pool), scenario.WithProgress(prog))
	exec := time.Since(start)
	<-s.sem
	s.sm.runs.Inc()
	s.sm.execNS.Observe(uint64(exec.Nanoseconds()))
	if err == nil {
		for _, ns := range res.Metrics.CollectiveIterNS {
			s.sm.collectiveIterNS.Observe(uint64(ns))
		}
	}

	if err == nil {
		// Marshal ONCE; these bytes are the cached value, so every hit —
		// concurrent or future — is bit-identical to this response.
		e.metrics, err = json.Marshal(res.Metrics)
	}
	e.err = err
	if err == nil {
		e.perf = res.Perf
	}
	close(e.done)

	s.mu.Lock()
	delete(s.inflight, key)
	if err == nil {
		s.cacheInsert(key, e)
	}
	s.mu.Unlock()

	committedMS := float64(prog.Committed()) / float64(des.Millisecond)
	if err != nil {
		s.finishRun(ru, endpoint, RunFailed, DispositionCold, exec, committedMS, prog.Events(), err.Error())
		return RunResponse{Key: key, RunID: id, Error: err.Error()}
	}
	disposition := DispositionCold
	if e.perf.ForkReused {
		disposition = DispositionFork
	}
	s.finishRun(ru, endpoint, RunDone, disposition, exec, committedMS, prog.Events(), "")
	return RunResponse{
		Key:        key,
		RunID:      id,
		ForkReused: e.perf.ForkReused,
		Metrics:    e.metrics,
		Perf:       &e.perf,
	}
}

// cacheInsert files a completed entry as most-recently-used and evicts from
// the LRU tail past either bound. Caller holds s.mu. A single entry larger
// than CacheBytes is allowed to stand alone: evicting the entry just
// inserted would turn every oversized result into a permanent miss.
func (s *Server) cacheInsert(key string, e *entry) {
	ce := &cacheEntry{key: key, e: e, size: int64(len(e.metrics))}
	s.cache[key] = s.lru.PushFront(ce)
	s.cacheBytes += ce.size
	for (s.lru.Len() > s.cfg.CacheSize || s.cacheBytes > s.cfg.CacheBytes) && s.lru.Len() > 1 {
		el := s.lru.Back()
		old := el.Value.(*cacheEntry)
		s.lru.Remove(el)
		delete(s.cache, old.key)
		s.cacheBytes -= old.size
		s.sm.cacheEvictions.Inc()
	}
	s.sm.cacheEntries.Set(int64(s.lru.Len()))
	s.sm.cacheBytes.Set(s.cacheBytes)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
