package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Workers: 4, CacheSize: 32, MaxBaselines: 4})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends body to path and decodes the reply into out, returning the
// status code.
func post(t *testing.T, ts *httptest.Server, path, body string, out any) int {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s reply: %v", path, err)
	}
	return resp.StatusCode
}

const pdesSpec = `{"mode":"pdes","topology":{"racks":4},"workload":{"load":0.3},"lps":2,"seed":%d,"horizon_ms":1%s}`

// TestCacheHitBitIdentical is the satellite e2e test: the same spec POSTed
// twice — the second reply must be a cache hit carrying a byte-identical
// metrics payload.
func TestCacheHitBitIdentical(t *testing.T) {
	_, ts := newTestServer(t)
	body := fmt.Sprintf(pdesSpec, 7, "")
	var first, second RunResponse
	if code := post(t, ts, "/v1/run", body, &first); code != http.StatusOK {
		t.Fatalf("first POST: status %d (%s)", code, first.Error)
	}
	if first.Cached {
		t.Fatal("first run of a spec cannot be a cache hit")
	}
	if code := post(t, ts, "/v1/run", body, &second); code != http.StatusOK {
		t.Fatalf("second POST: status %d (%s)", code, second.Error)
	}
	if !second.Cached {
		t.Fatal("identical resubmission was not served from cache")
	}
	if first.Key != second.Key || first.Key == "" {
		t.Fatalf("keys differ: %q vs %q", first.Key, second.Key)
	}
	if !bytes.Equal(first.Metrics, second.Metrics) {
		t.Fatalf("cache hit is not bit-identical:\n first  %s\n second %s", first.Metrics, second.Metrics)
	}
	// Field-order invariance end to end: a shuffled-JSON duplicate hits too.
	shuffled := `{"horizon_ms":1,"seed":7,"lps":2,"workload":{"load":0.3},"topology":{"racks":4},"mode":"pdes"}`
	var third RunResponse
	post(t, ts, "/v1/run", shuffled, &third)
	if !third.Cached || !bytes.Equal(first.Metrics, third.Metrics) {
		t.Fatal("field-order-shuffled duplicate missed the cache")
	}
}

// TestSeedsDistinct: two specs differing only in seed must key and result
// differently.
func TestSeedsDistinct(t *testing.T) {
	_, ts := newTestServer(t)
	var a, b RunResponse
	post(t, ts, "/v1/run", fmt.Sprintf(pdesSpec, 1, ""), &a)
	post(t, ts, "/v1/run", fmt.Sprintf(pdesSpec, 2, ""), &b)
	if a.Error != "" || b.Error != "" {
		t.Fatalf("run errors: %q / %q", a.Error, b.Error)
	}
	if a.Key == b.Key {
		t.Fatal("different seeds share a cache key")
	}
	if b.Cached {
		t.Fatal("different seed served from cache")
	}
	if bytes.Equal(a.Metrics, b.Metrics) {
		t.Fatalf("different seeds produced identical metrics: %s", a.Metrics)
	}
}

// TestSweepForkReuse: a 3-variant fault sweep shares one warmed baseline —
// at least one result must report a snapshot fork, and the pool counter must
// agree (the acceptance criterion's ≥1 reuse).
func TestSweepForkReuse(t *testing.T) {
	s, ts := newTestServer(t)
	sweep := fmt.Sprintf(`{"scenarios":[%s,%s,%s]}`,
		fmt.Sprintf(pdesSpec, 7, ``),
		fmt.Sprintf(pdesSpec, 7, `,"faults":"switch:spine0@300us+200us,detect=50us"`),
		fmt.Sprintf(pdesSpec, 7, `,"faults":"link:tor0-spine1@200us+400us,detect=40us"`))
	var resp SweepResponse
	if code := post(t, ts, "/v1/sweep", sweep, &resp); code != http.StatusOK {
		t.Fatalf("sweep status %d", code)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("%d results, want 3", len(resp.Results))
	}
	forks := 0
	for i, r := range resp.Results {
		if r.Error != "" {
			t.Fatalf("variant %d failed: %s", i, r.Error)
		}
		if r.ForkReused {
			forks++
		}
	}
	if forks < 1 {
		t.Fatal("3-variant sweep reported no snapshot-fork reuse")
	}
	if st := s.Stats(); st.Pool.Reuses < 1 {
		t.Fatalf("pool reports no reuse: %+v", st.Pool)
	}
	if resp.Stats.Runs != 3 {
		t.Fatalf("sweep stats: %+v", resp.Stats)
	}
}

// TestSweepWarmMultiLPForkReuse: a fault sweep over a multi-LP warm family —
// the shape the warm-fork bugfix unlocks — runs end to end through the HTTP
// API. The baseline warms once to warm_ms with lps=4 (parking in-flight
// cross-LP packets at the warm point), every later variant forks it there,
// and each variant commits a real (nonzero-flow) result.
func TestSweepWarmMultiLPForkReuse(t *testing.T) {
	s, ts := newTestServer(t)
	warmSpec := func(faults string) string {
		return fmt.Sprintf(`{"mode":"pdes","topology":{"racks":8},"workload":{"load":0.5},"lps":4,"seed":9,"horizon_ms":3,"warm_ms":1%s}`, faults)
	}
	sweep := fmt.Sprintf(`{"scenarios":[%s,%s,%s]}`,
		warmSpec(``),
		warmSpec(`,"faults":"switch:spine1@1500us+500us,detect=40us"`),
		warmSpec(`,"faults":"link:tor0-spine0@1200us+600us,detect=60us,jitter=10us"`))
	var resp SweepResponse
	if code := post(t, ts, "/v1/sweep", sweep, &resp); code != http.StatusOK {
		t.Fatalf("sweep status %d", code)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("%d results, want 3", len(resp.Results))
	}
	forks := 0
	for i, r := range resp.Results {
		if r.Error != "" {
			t.Fatalf("variant %d failed: %s", i, r.Error)
		}
		if r.ForkReused {
			forks++
		}
		var m struct {
			Flows     int `json:"flows"`
			Completed int `json:"completed"`
		}
		if err := json.Unmarshal(r.Metrics, &m); err != nil {
			t.Fatalf("variant %d metrics: %v", i, err)
		}
		if m.Flows == 0 || m.Completed == 0 {
			t.Fatalf("variant %d committed a degenerate result: %s", i, r.Metrics)
		}
	}
	if forks != 2 {
		t.Fatalf("%d forks across a 3-variant warm family, want 2", forks)
	}
	if st := s.Stats(); st.Pool.Reuses < 2 {
		t.Fatalf("pool reports %d reuses, want >= 2: %+v", st.Pool.Reuses, st.Pool)
	}
}

// TestConcurrentPosts hammers the server with duplicate and distinct specs
// concurrently (run under -race in CI): every reply for one key must carry
// the same metrics bytes, and each distinct spec must simulate at most once.
func TestConcurrentPosts(t *testing.T) {
	s, ts := newTestServer(t)
	const perSpec = 8
	seeds := []int{1, 2, 3}
	var wg sync.WaitGroup
	results := make(chan RunResponse, perSpec*len(seeds))
	for _, seed := range seeds {
		body := fmt.Sprintf(pdesSpec, seed, "")
		for i := 0; i < perSpec; i++ {
			wg.Add(1)
			go func(body string) {
				defer wg.Done()
				var r RunResponse
				if code := post(t, ts, "/v1/run", body, &r); code != http.StatusOK {
					t.Errorf("status %d: %s", code, r.Error)
					return
				}
				results <- r
			}(body)
		}
	}
	wg.Wait()
	close(results)
	byKey := map[string][]byte{}
	for r := range results {
		if prev, ok := byKey[r.Key]; ok {
			if !bytes.Equal(prev, r.Metrics) {
				t.Fatalf("key %s served two different payloads", r.Key)
			}
		} else {
			byKey[r.Key] = r.Metrics
		}
	}
	if len(byKey) != len(seeds) {
		t.Fatalf("%d distinct keys, want %d", len(byKey), len(seeds))
	}
	if st := s.Stats(); st.Runs != uint64(len(seeds)) {
		t.Fatalf("%d simulations for %d distinct specs (in-flight dedup broken)", st.Runs, len(seeds))
	}
}

// TestRejections: malformed, invalid, unknown-field, and capture-carrying
// requests are 400s and never reach the engine.
func TestRejections(t *testing.T) {
	s, ts := newTestServer(t)
	for name, body := range map[string]string{
		"malformed":     `{"mode":`,
		"unknown mode":  `{"mode":"quantum"}`,
		"unknown field": `{"mode":"full","horzon_ms":5}`,
		"capture":       `{"mode":"full","capture":"cluster"}`,
		"bad faults":    `{"mode":"pdes","faults":"spine0 dies"}`,
	} {
		var r RunResponse
		if code := post(t, ts, "/v1/run", body, &r); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
		if r.Error == "" {
			t.Errorf("%s: no error in reply", name)
		}
	}
	if st := s.Stats(); st.Runs != 0 {
		t.Fatalf("rejected requests reached the engine: %+v", st)
	}
}

// TestStatsAndHealth covers the two GET endpoints.
func TestStatsAndHealth(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var st Stats
	r2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := json.NewDecoder(r2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Workers != 4 {
		t.Fatalf("stats: %+v", st)
	}
}
