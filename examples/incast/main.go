// Incast: the pathological TCP minimum-window behavior from §2.1 of the
// paper — "given enough simultaneous connections, it is possible that the
// fair share of each connection is less than their minimum window size.
// When this occurs, TCP will never back off enough to prevent high packet
// loss."
//
// We aim an increasing number of synchronized senders at a single receiver
// behind one 10 GbE rack link and watch loss behavior change qualitatively:
// with a few senders, fast retransmit absorbs the burst; past the point
// where fanIn x (1 MSS minimum window) exceeds the bottleneck queue, every
// round of transmissions overflows the queue and timeouts dominate. This is
// exactly the scale-dependent phenomenon the paper argues small testbeds
// (and truncated simulations) cannot reveal.
//
// Alongside the summary table, every run streams an interval metrics time
// series (tagged with its fan-in) to incast_metrics.jsonl and the whole
// sweep ends with an aggregate registry snapshot — the observability layer's
// view of the same collapse: watch tcp.timeouts go from a trickle to the
// dominant term between tags.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"approxsim/internal/des"
	"approxsim/internal/metrics"
	"approxsim/internal/obs"
	"approxsim/internal/tcp"
	"approxsim/internal/topology"
	"approxsim/internal/traffic"
)

const (
	horizon    = 2 * des.Second
	seriesPath = "incast_metrics.jsonl"
)

func main() {
	reg := metrics.NewRegistry()
	series, err := os.Create(seriesPath)
	if err != nil {
		log.Fatal(err)
	}
	defer series.Close()
	// One row per 250 virtual ms. The registry is shared across the sweep, so
	// within a tag the rows are that run's deltas and the t_s clock restarts
	// with each fresh kernel.
	sampler := obs.NewSampler(reg, series, 250*des.Millisecond)

	fmt.Println("synchronized incast into one server; bottleneck: its rack link")
	fmt.Printf("%7s %10s %12s %12s %14s %12s\n",
		"flows", "completed", "retransmits", "timeouts", "mean FCT (ms)", "p99 (ms)")
	var last des.Time
	for _, fanIn := range []int{2, 8, 24, 48, 96} {
		sampler.SetTag(fmt.Sprintf("fanin=%d", fanIn))
		summary, end := runIncast(fanIn, reg, sampler)
		last = end
		fmt.Printf("%7d %10d %12d %12d %14.3f %12.3f\n",
			fanIn, summary.Completed, summary.Retrans, summary.Timeouts,
			summary.MeanFCT*1e3, summary.P99FCT*1e3)
	}
	if err := sampler.Close(last); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npast the minimum-window threshold the loss pattern shifts from")
	fmt.Println("fast-retransmit repair to RTO-driven collapse (compare the jump in")
	fmt.Println("timeouts and tail FCT) — the Section 2.1 pathology.")

	out, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naggregate metrics across the sweep (time series in %s):\n%s\n",
		seriesPath, out)
}

func runIncast(fanIn int, reg *metrics.Registry, sampler *obs.Sampler) (traffic.Summary, des.Time) {
	// A cluster topology big enough to host fanIn senders across racks,
	// all converging on host 0.
	clusters := 1 + (fanIn+7)/8
	k := des.NewKernel()
	topo, err := topology.Build(k, topology.DefaultClosConfig(clusters))
	if err != nil {
		log.Fatal(err)
	}
	stacks := make([]*tcp.Stack, len(topo.Hosts))
	for i, h := range topo.Hosts {
		stacks[i] = tcp.NewStack(h, tcp.Config{
			MinRTO:     des.Millisecond,
			InitialRTO: 5 * des.Millisecond,
		})
	}
	reg.Register("des", k)
	reg.Register("netsim", topo)
	for _, s := range stacks {
		reg.Register("tcp", s)
	}
	sampler.InstallKernel(k, horizon)
	var results []tcp.FlowResult
	const flowBytes = 64_000 // one synchronized block per sender
	for i := 0; i < fanIn; i++ {
		src := i + 1 // host 0 is the victim receiver
		stacks[src].StartFlow(0, flowBytes, uint64(i+1), func(r tcp.FlowResult) {
			results = append(results, r)
		})
	}
	k.Run(horizon)
	return traffic.Summarize(results, horizon), k.Now()
}
