// PDES scaling: the paper's Figure 1 phenomenon as a runnable demo.
//
// The same leaf-spine network and the same workload are simulated by a
// single-threaded kernel and by conservative parallel DES with 2, 4, and 8
// logical processes. Leaf-spine fabrics are all-to-all between leaves and
// spines, so almost every ToR-spine link crosses a partition: each LP must
// exchange null messages with every other LP to advance its clock a few
// microseconds at a time. Watch the null-message counts explode and the
// sim-seconds-per-second drop — "synchronization can actually cause PDES to
// perform worse than a single-threaded implementation" (§2.2).
package main

import (
	"fmt"
	"log"

	"approxsim/internal/des"
	"approxsim/internal/pdes"
)

func main() {
	const (
		load = 0.35
		dur  = 2 * des.Millisecond
		seed = 11
	)
	fmt.Println("leaf-spine, racks of 4 servers, 10 GbE; same workload per row group")
	fmt.Printf("%6s %4s %14s %10s %12s %12s\n",
		"ToRs", "LPs", "sim-s/wall-s", "events", "null msgs", "cross pkts")
	for _, n := range []int{8, 16, 32} {
		for _, lps := range []int{1, 2, 4, 8} {
			res, err := pdes.RunLeafSpine(n, lps, load, dur, seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%6d %4d %14.4g %10d %12d %12d\n",
				n, lps, res.SimPerWall, res.Events, res.Nulls, res.CrossPkts)
		}
		fmt.Println()
	}
	fmt.Println("(on a single-core host every LP shares one CPU, so parallel rows show")
	fmt.Println(" pure synchronization overhead — the large-topology regime of Fig. 1)")
}
