// PDES scaling: the paper's Figure 1 phenomenon as a runnable demo.
//
// The same leaf-spine network and the same workload are simulated by a
// single-threaded kernel and by parallel DES with 2, 4, and 8 logical
// processes under each synchronization algorithm. Leaf-spine fabrics are
// all-to-all between leaves and spines, so almost every ToR-spine link
// crosses a partition: a conservative LP must exchange null messages with
// every other LP to advance its clock a few microseconds at a time, and an
// optimistic LP speculates into work it must constantly roll back. Watch the
// sync-message and rollback counts explode and the sim-seconds-per-second
// drop — "synchronization can actually cause PDES to perform worse than a
// single-threaded implementation" (§2.2).
//
// Pass -quick for a CI-sized smoke run.
package main

import (
	"flag"
	"fmt"
	"log"

	"approxsim/internal/des"
	"approxsim/internal/pdes"
)

func main() {
	quick := flag.Bool("quick", false, "small topology and short horizon (CI smoke)")
	flag.Parse()

	const (
		load = 0.35
		seed = 11
	)
	dur := 2 * des.Millisecond
	sizes := []int{8, 16, 32}
	lpsSet := []int{1, 2, 4, 8}
	algos := []pdes.SyncAlgo{pdes.NullMessages, pdes.Barrier, pdes.TimeWarp}
	if *quick {
		dur = 500 * des.Microsecond
		sizes = []int{4}
		lpsSet = []int{1, 2}
	}

	fmt.Println("leaf-spine, racks of 4 servers, 10 GbE; same workload per row group")
	fmt.Printf("%6s %4s %9s %14s %10s %12s %12s %10s\n",
		"ToRs", "LPs", "sync", "sim-s/wall-s", "events", "sync msgs", "cross pkts", "rollbacks")
	for _, n := range sizes {
		for _, lps := range lpsSet {
			for _, algo := range algos {
				if lps == 1 && algo != pdes.NullMessages {
					continue // one LP never synchronizes; one row is enough
				}
				res, err := pdes.RunLeafSpineSync(n, lps, load, dur, seed, algo)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%6d %4d %9v %14.4g %10d %12d %12d %10d\n",
					n, lps, algo, res.SimPerWall, res.Events,
					res.Nulls+res.Barriers, res.CrossPkts, res.Rollbacks)
			}
		}
		fmt.Println()
	}
	fmt.Println("(on a single-core host every LP shares one CPU, so parallel rows show")
	fmt.Println(" pure synchronization overhead — the large-topology regime of Fig. 1;")
	fmt.Println(" committed event counts agree across sync algorithms by construction)")
}
