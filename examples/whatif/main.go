// What-if study: the downstream workflow the paper is motivated by —
// evaluating a design change at a scale that full-fidelity simulation makes
// painful, by reusing one trained model across many cheap hybrid runs.
//
// The question here: how does switch buffer depth in the OBSERVED cluster
// affect tail flow-completion time at 8-cluster scale? The observed cluster
// stays full-fidelity (so the buffer change is faithfully simulated); the
// other seven clusters are model-approximated background. One training run
// amortizes across the whole parameter sweep.
//
// Each sweep point also streams an interval metrics time series (tagged with
// its buffer depth) to whatif_metrics.jsonl through core.Config — where the
// summary table shows one aggregate per depth, the rows show how loss and
// retransmission evolve within each run.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"approxsim/internal/core"
	"approxsim/internal/des"
	"approxsim/internal/metrics"
	"approxsim/internal/nn"
	"approxsim/internal/packet"
	"approxsim/internal/pdes"
	"approxsim/internal/topology"
)

const seriesPath = "whatif_metrics.jsonl"

func main() {
	// One training pass on the small configuration.
	trainCfg := core.Config{Clusters: 2, Duration: 5 * des.Millisecond, Load: 0.5, Seed: 3}
	fmt.Println("training models once (2-cluster full-fidelity capture)...")
	full, err := core.RunFull(trainCfg, true)
	if err != nil {
		log.Fatal(err)
	}
	models, err := core.TrainModels(full.Records, trainCfg.TopologyConfig(), core.TrainOptions{
		Hidden: 16, Layers: 1,
		NN:   nn.TrainConfig{LR: 0.02, Batches: 300, Batch: 16, BPTT: 16, Seed: 3},
		Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	series, err := os.Create(seriesPath)
	if err != nil {
		log.Fatal(err)
	}
	defer series.Close()

	fmt.Println("\nsweep: fabric buffer depth in the observed cluster @ 8-cluster scale")
	fmt.Printf("%14s %12s %14s %12s %10s\n",
		"buffer", "mean FCT", "p99 FCT", "retransmits", "wall")
	for _, frames := range []int64{4, 8, 16, 32, 64} {
		topoCfg := topology.DefaultClosConfig(8)
		topoCfg.FabricLink.QueueBytes = frames * packet.MaxFrameSize
		topoCfg.CoreLink.QueueBytes = frames * packet.MaxFrameSize
		cfg := core.Config{
			Topology: &topoCfg,
			Clusters: 8,
			Duration: 4 * des.Millisecond,
			Load:     0.5,
			Seed:     1003, // evaluation workload, not the training one
			// Interval telemetry: one tagged row per virtual millisecond of
			// this sweep point, appended to the shared JSONL file.
			Metrics:         metrics.NewRegistry(),
			MetricsInterval: des.Millisecond,
			MetricsWriter:   series,
			MetricsTag:      fmt.Sprintf("buffer=%dpkt", frames),
		}
		start := time.Now()
		res, err := core.RunHybrid(cfg, models)
		if err != nil {
			log.Fatal(err)
		}
		snap := cfg.Metrics.Snapshot()
		fmt.Printf("%10d pkt %10.3fms %12.3fms %12d %9.2fs  (drops=%d)\n",
			frames, res.Summary.MeanFCT*1e3, res.Summary.P99FCT*1e3,
			res.Summary.Retrans, time.Since(start).Seconds(),
			snap.Counter("netsim", "drops"))
	}
	fmt.Println("\neach sweep point reuses the same trained background models;")
	fmt.Println("only the full-fidelity cluster re-simulates the design change.")
	fmt.Printf("per-run interval telemetry: %s\n", seriesPath)

	faultStudy()
}

// faultStudy is the second what-if: how much failure-detection delay can the
// fabric tolerate? A spine switch dies for 3ms mid-workload; until each ToR's
// detection delay elapses it keeps hashing flows onto the dead spine, and
// every packet sent there blackholes. The sweep varies only the detection
// delay — the outage itself, the workload, and the seed are fixed — so the
// fault-drop and completed-flow columns isolate the cost of slow failure
// detection. The schedule is declarative (parsed up front, like the
// workload), so the same study reproduces bit-identically under any sync
// algorithm or LP count.
func faultStudy() {
	const (
		tors = 8
		lps  = 2
		load = 0.5
		seed = uint64(1003)
		// Long horizon: flows whose early segments blackhole recover by
		// retransmission timeout, so the damage only shows up if the run
		// drains well past the outage.
		dur = 40 * des.Millisecond
	)
	fmt.Println("\nsweep: failure-detection delay under a 3ms spine-switch outage @ 8 ToRs")
	fmt.Printf("%12s %12s %12s %12s %12s\n",
		"detect", "fault drops", "completed", "mean FCT", "p99 FCT")
	for _, detect := range []string{"", "50us", "400us", "1ms"} {
		var opts []pdes.Option
		label := "(healthy)"
		if detect != "" {
			label = detect
			spec := fmt.Sprintf("switch:spine0@2ms+3ms,detect=%s,jitter=20us", detect)
			sched, err := topology.ParseFaults(topology.DefaultLeafSpineConfig(tors), spec)
			if err != nil {
				log.Fatal(err)
			}
			opts = append(opts, pdes.WithFaults(sched))
		}
		res, err := pdes.RunLeafSpineSync(tors, lps, load, dur, seed, pdes.NullMessages, opts...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12s %12d %8d/%-3d %10.3fms %10.3fms\n",
			label, res.FaultDrops, res.FlowsCompleted, res.FlowsStarted,
			res.MeanFCTSec*1e3, res.P99FCTSec*1e3)
	}
	fmt.Println("\nthe outage and the workload are identical down the column; only the")
	fmt.Println("per-switch detection delay moves the blackhole window. FCT columns")
	fmt.Println("cover completed flows only — the damage is in the completed count.")
}
