// What-if study: the downstream workflow the paper is motivated by —
// evaluating a design change at a scale that full-fidelity simulation makes
// painful, by reusing one trained model across many cheap hybrid runs.
//
// The question here: how does switch buffer depth in the OBSERVED cluster
// affect tail flow-completion time at 8-cluster scale? The observed cluster
// stays full-fidelity (so the buffer change is faithfully simulated); the
// other seven clusters are model-approximated background. One training run
// amortizes across the whole parameter sweep.
//
// Each sweep point is a scenario.Spec run through scenario.Run — the same
// serializable description a simd server request carries, so any row of
// either sweep can be reproduced with a curl POST. The second study (failure
// detection) runs its variants through a shared scenario.Pool: the healthy
// baseline is simulated once, snapshotted, and every fault variant forks the
// snapshot instead of cold-starting.
//
// Each buffer sweep point also streams an interval metrics time series
// (tagged with its buffer depth) to whatif_metrics.jsonl — where the summary
// table shows one aggregate per depth, the rows show how loss and
// retransmission evolve within each run.
package main

import (
	"fmt"
	"log"
	"os"

	"approxsim/internal/core"
	"approxsim/internal/des"
	"approxsim/internal/metrics"
	"approxsim/internal/nn"
	"approxsim/internal/scenario"
)

const seriesPath = "whatif_metrics.jsonl"

func main() {
	// One training pass on the small configuration.
	trainSp := scenario.Spec{
		Mode:      "full",
		Topology:  scenario.Topology{Kind: "clos", Clusters: 2},
		Workload:  scenario.Workload{Load: 0.5},
		Seed:      3,
		HorizonMS: 5,
		Capture:   "cluster",
	}
	fmt.Println("training models once (2-cluster full-fidelity capture)...")
	full, err := scenario.Run(trainSp)
	if err != nil {
		log.Fatal(err)
	}
	topoCfg := core.Config{Clusters: 2}.TopologyConfig()
	models, err := core.TrainModels(full.Run.Records, topoCfg, core.TrainOptions{
		Hidden: 16, Layers: 1,
		NN:   nn.TrainConfig{LR: 0.02, Batches: 300, Batch: 16, BPTT: 16, Seed: 3},
		Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	series, err := os.Create(seriesPath)
	if err != nil {
		log.Fatal(err)
	}
	defer series.Close()

	fmt.Println("\nsweep: fabric buffer depth in the observed cluster @ 8-cluster scale")
	fmt.Printf("%14s %12s %14s %12s %10s\n",
		"buffer", "mean FCT", "p99 FCT", "retransmits", "wall")
	for _, frames := range []int64{4, 8, 16, 32, 64} {
		sp := scenario.Spec{
			Mode:      "hybrid",
			Topology:  scenario.Topology{Kind: "clos", Clusters: 8, QueueFrames: frames},
			Workload:  scenario.Workload{Load: 0.5},
			Seed:      1003, // evaluation workload, not the training one
			HorizonMS: 4,
		}
		reg := metrics.NewRegistry()
		tag := fmt.Sprintf("buffer=%dpkt", frames)
		res, err := scenario.Run(sp,
			scenario.WithModels(models),
			scenario.WithRegistry(reg),
			// Interval telemetry: one tagged row per virtual millisecond of
			// this sweep point, appended to the shared JSONL file.
			scenario.WithCoreConfig(func(cfg *core.Config) {
				cfg.MetricsInterval = des.Millisecond
				cfg.MetricsWriter = series
				cfg.MetricsTag = tag
			}))
		if err != nil {
			log.Fatal(err)
		}
		snap := reg.Snapshot()
		fmt.Printf("%10d pkt %10.3fms %12.3fms %12d %9.2fs  (drops=%d)\n",
			frames, res.Metrics.MeanFCTSec*1e3, res.Metrics.P99FCTSec*1e3,
			res.Metrics.Retrans, res.Perf.WallSeconds,
			snap.Counter("netsim", "drops"))
	}
	fmt.Println("\neach sweep point reuses the same trained background models;")
	fmt.Println("only the full-fidelity cluster re-simulates the design change.")
	fmt.Printf("per-run interval telemetry: %s\n", seriesPath)

	faultStudy()
}

// faultStudy is the second what-if: how much failure-detection delay can the
// fabric tolerate? A spine switch dies for 3ms mid-workload; until each ToR's
// detection delay elapses it keeps hashing flows onto the dead spine, and
// every packet sent there blackholes. The sweep varies only the detection
// delay — the outage itself, the workload, and the seed are fixed — so the
// fault-drop and completed-flow columns isolate the cost of slow failure
// detection.
//
// Because the specs differ only in their fault schedule they share a baseline
// key, and the shared Pool simulates the fabric once: the first variant
// builds and snapshots the baseline system, the rest fork the snapshot and
// replay only their own outage (the "fork" column). The schedule is
// declarative, so the same study reproduces bit-identically under any sync
// algorithm or LP count — or cold, without the pool.
func faultStudy() {
	fmt.Println("\nsweep: failure-detection delay under a 3ms spine-switch outage @ 8 ToRs")
	fmt.Printf("%12s %12s %12s %12s %12s %6s\n",
		"detect", "fault drops", "completed", "mean FCT", "p99 FCT", "fork")
	pool := scenario.NewPool(1)
	for _, detect := range []string{"", "50us", "400us", "1ms"} {
		sp := scenario.Spec{
			Mode:     "pdes",
			Topology: scenario.Topology{Kind: "leafspine", Racks: 8},
			Workload: scenario.Workload{Load: 0.5},
			LPs:      2,
			Seed:     1003,
			// Long horizon: flows whose early segments blackhole recover by
			// retransmission timeout, so the damage only shows up if the run
			// drains well past the outage.
			HorizonMS: 40,
		}
		label := "(healthy)"
		if detect != "" {
			label = detect
			sp.Faults = fmt.Sprintf("switch:spine0@2ms+3ms,detect=%s,jitter=20us", detect)
		}
		res, err := scenario.Run(sp, scenario.WithPool(pool))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12s %12d %8d/%-3d %10.3fms %10.3fms %6v\n",
			label, res.Metrics.FaultDrops, res.Metrics.Completed, res.Metrics.Flows,
			res.Metrics.MeanFCTSec*1e3, res.Metrics.P99FCTSec*1e3, res.Perf.ForkReused)
	}
	st := pool.Stats()
	fmt.Println("\nthe outage and the workload are identical down the column; only the")
	fmt.Println("per-switch detection delay moves the blackhole window. FCT columns")
	fmt.Println("cover completed flows only — the damage is in the completed count.")
	fmt.Printf("snapshot pool: %d baseline build(s), %d fork reuse(s)\n", st.Builds, st.Reuses)
}
