// What-if study: the downstream workflow the paper is motivated by —
// evaluating a design change at a scale that full-fidelity simulation makes
// painful, by reusing one trained model across many cheap hybrid runs.
//
// The question here: how does switch buffer depth in the OBSERVED cluster
// affect tail flow-completion time at 8-cluster scale? The observed cluster
// stays full-fidelity (so the buffer change is faithfully simulated); the
// other seven clusters are model-approximated background. One training run
// amortizes across the whole parameter sweep.
//
// Each sweep point also streams an interval metrics time series (tagged with
// its buffer depth) to whatif_metrics.jsonl through core.Config — where the
// summary table shows one aggregate per depth, the rows show how loss and
// retransmission evolve within each run.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"approxsim/internal/core"
	"approxsim/internal/des"
	"approxsim/internal/metrics"
	"approxsim/internal/nn"
	"approxsim/internal/packet"
	"approxsim/internal/topology"
)

const seriesPath = "whatif_metrics.jsonl"

func main() {
	// One training pass on the small configuration.
	trainCfg := core.Config{Clusters: 2, Duration: 5 * des.Millisecond, Load: 0.5, Seed: 3}
	fmt.Println("training models once (2-cluster full-fidelity capture)...")
	full, err := core.RunFull(trainCfg, true)
	if err != nil {
		log.Fatal(err)
	}
	models, err := core.TrainModels(full.Records, trainCfg.TopologyConfig(), core.TrainOptions{
		Hidden: 16, Layers: 1,
		NN:   nn.TrainConfig{LR: 0.02, Batches: 300, Batch: 16, BPTT: 16, Seed: 3},
		Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	series, err := os.Create(seriesPath)
	if err != nil {
		log.Fatal(err)
	}
	defer series.Close()

	fmt.Println("\nsweep: fabric buffer depth in the observed cluster @ 8-cluster scale")
	fmt.Printf("%14s %12s %14s %12s %10s\n",
		"buffer", "mean FCT", "p99 FCT", "retransmits", "wall")
	for _, frames := range []int64{4, 8, 16, 32, 64} {
		topoCfg := topology.DefaultClosConfig(8)
		topoCfg.FabricLink.QueueBytes = frames * packet.MaxFrameSize
		topoCfg.CoreLink.QueueBytes = frames * packet.MaxFrameSize
		cfg := core.Config{
			Topology: &topoCfg,
			Clusters: 8,
			Duration: 4 * des.Millisecond,
			Load:     0.5,
			Seed:     1003, // evaluation workload, not the training one
			// Interval telemetry: one tagged row per virtual millisecond of
			// this sweep point, appended to the shared JSONL file.
			Metrics:         metrics.NewRegistry(),
			MetricsInterval: des.Millisecond,
			MetricsWriter:   series,
			MetricsTag:      fmt.Sprintf("buffer=%dpkt", frames),
		}
		start := time.Now()
		res, err := core.RunHybrid(cfg, models)
		if err != nil {
			log.Fatal(err)
		}
		snap := cfg.Metrics.Snapshot()
		fmt.Printf("%10d pkt %10.3fms %12.3fms %12d %9.2fs  (drops=%d)\n",
			frames, res.Summary.MeanFCT*1e3, res.Summary.P99FCT*1e3,
			res.Summary.Retrans, time.Since(start).Seconds(),
			snap.Counter("netsim", "drops"))
	}
	fmt.Println("\neach sweep point reuses the same trained background models;")
	fmt.Println("only the full-fidelity cluster re-simulates the design change.")
	fmt.Printf("per-run interval telemetry: %s\n", seriesPath)
}
