// Quickstart: build a small Clos data center, run a full-fidelity
// packet-level simulation of a realistic web workload, and print the flow
// and latency statistics — the "hello world" of the library.
package main

import (
	"fmt"
	"log"

	"approxsim/internal/core"
	"approxsim/internal/des"
)

func main() {
	// Two clusters of the paper's shape (2 ToRs + 2 cluster switches,
	// 8 servers each), 10 GbE links, web-search flow sizes, Poisson
	// arrivals at 40% load for 5 virtual milliseconds.
	cfg := core.Config{
		Clusters: 2,
		Duration: 5 * des.Millisecond,
		Load:     0.4,
		Seed:     42,
	}

	res, err := core.RunFull(cfg, false)
	if err != nil {
		log.Fatal(err)
	}

	s := res.Summary
	fmt.Printf("simulated %v of datacenter time in %.3fs of wall time (%.1fx slower than real time)\n",
		res.SimTime, res.Wall.Seconds(), 1/res.SimSecondsPerSecond())
	fmt.Printf("scheduler events: %d\n", res.Events)
	fmt.Printf("flows: %d started, %d completed\n", s.Flows, s.Completed)
	fmt.Printf("mean FCT: %.3gms   p99 FCT: %.3gms\n", s.MeanFCT*1e3, s.P99FCT*1e3)
	fmt.Printf("goodput: %.2f Gb/s   retransmissions: %d   timeouts: %d\n",
		s.GoodputBps/1e9, s.Retrans, s.Timeouts)
	if res.RTTs.Len() > 0 {
		fmt.Printf("RTTs observed by cluster-0 hosts: p50=%.1fus p99=%.1fus (n=%d)\n",
			res.RTTs.Quantile(0.5)*1e6, res.RTTs.Quantile(0.99)*1e6, res.RTTs.Len())
	}
}
