// Quickstart: build a small Clos data center, run a full-fidelity
// packet-level simulation of a realistic web workload, and print the flow
// and latency statistics — the "hello world" of the library.
package main

import (
	"fmt"
	"log"

	"approxsim/internal/scenario"
)

func main() {
	// Two clusters of the paper's shape (2 ToRs + 2 cluster switches,
	// 8 servers each), 10 GbE links, web-search flow sizes, Poisson
	// arrivals at 40% load for 5 virtual milliseconds. The Spec is the
	// library's universal experiment description — POST this same struct as
	// JSON to the simd server and you get this same run.
	sp := scenario.Spec{
		Mode:      "full",
		Topology:  scenario.Topology{Kind: "clos", Clusters: 2},
		Workload:  scenario.Workload{Load: 0.4},
		Seed:      42,
		HorizonMS: 5,
	}

	res, err := scenario.Run(sp)
	if err != nil {
		log.Fatal(err)
	}

	m, p := res.Metrics, res.Perf
	fmt.Printf("simulated %.3gms of datacenter time in %.3fs of wall time (%.1fx slower than real time)\n",
		p.SimSeconds*1e3, p.WallSeconds, 1/p.SimPerWall)
	fmt.Printf("scheduler events: %d\n", p.Events)
	fmt.Printf("flows: %d started, %d completed\n", m.Flows, m.Completed)
	fmt.Printf("mean FCT: %.3gms   p99 FCT: %.3gms\n", m.MeanFCTSec*1e3, m.P99FCTSec*1e3)
	fmt.Printf("goodput: %.2f Gb/s   retransmissions: %d   timeouts: %d\n",
		m.GoodputBps/1e9, m.Retrans, m.Timeouts)
	if m.RTTSamples > 0 {
		fmt.Printf("RTTs observed by cluster-0 hosts: p50=%.1fus p99=%.1fus (n=%d)\n",
			m.RTTP50Sec*1e6, m.RTTP99Sec*1e6, m.RTTSamples)
	}
}
