// Approximation pipeline: the paper's headline workflow end-to-end.
//
//  1. Simulate two clusters in full packet-level fidelity and record every
//     fabric traversal of cluster 0 (features + latency/drop labels).
//  2. Train the macro-state classifier and the two LSTM micro models.
//  3. Rebuild the network at 8 clusters with every cluster except one
//     replaced by the trained models, run the same style of workload, and
//     compare speed and accuracy against the fully simulated version.
//
// This is Figure 3 of the paper as a program.
package main

import (
	"fmt"
	"log"

	"approxsim/internal/core"
	"approxsim/internal/des"
	"approxsim/internal/nn"
	"approxsim/internal/trace"
)

func main() {
	// --- Step 1: full-fidelity training capture (2 clusters). ---
	trainCfg := core.Config{
		Clusters: 2,
		Duration: 6 * des.Millisecond,
		Load:     0.4,
		Seed:     7,
	}
	fmt.Println("step 1: capturing boundary traces from a 2-cluster full simulation...")
	full, err := core.RunFull(trainCfg, true)
	if err != nil {
		log.Fatal(err)
	}
	eg, ing := trace.Split(full.Records)
	fmt.Printf("  %d egress + %d ingress traversals captured (%.2fs wall)\n\n",
		len(eg), len(ing), full.Wall.Seconds())

	// --- Step 2: train the micro models. ---
	fmt.Println("step 2: training ingress/egress LSTM micro models...")
	models, err := core.TrainModels(full.Records, trainCfg.TopologyConfig(), core.TrainOptions{
		Hidden: 16, Layers: 1,
		NN:   nn.TrainConfig{LR: 0.02, Batches: 300, Batch: 16, BPTT: 16, Seed: 7},
		Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  trained 2 models x %d parameters\n\n", models.Egress.NumParams())

	// --- Step 3: at-scale comparison (8 clusters, held-out seed). ---
	evalCfg := core.Config{
		Clusters: 8,
		Duration: 4 * des.Millisecond,
		Load:     0.4,
		Seed:     1007, // not the training workload
	}
	fmt.Println("step 3: running 8 clusters fully vs hybrid (7 of 8 approximated)...")
	truth, err := core.RunFull(evalCfg, false)
	if err != nil {
		log.Fatal(err)
	}
	hybrid, err := core.RunHybrid(evalCfg, models)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("  full:   %8d events  %.3fs wall  %d flows completed\n",
		truth.Events, truth.Wall.Seconds(), truth.Summary.Completed)
	fmt.Printf("  hybrid: %8d events  %.3fs wall  %d flows completed\n",
		hybrid.Events, hybrid.Wall.Seconds(), hybrid.Summary.Completed)
	fmt.Printf("  event reduction: %.2fx   wall speedup: %.2fx\n",
		float64(truth.Events)/float64(hybrid.Events),
		truth.Wall.Seconds()/hybrid.Wall.Seconds())

	cmp, err := core.CompareRTT(truth, hybrid, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  RTT distribution divergence (KS): %.3f\n", cmp.KS)
	fmt.Println("\n  RTT CDF (seconds):")
	fmt.Println("  p       ground-truth   approx")
	for i := 0; i < len(cmp.Full) && i < len(cmp.Approx); i += 4 {
		fmt.Printf("  %.2f    %10.3g   %10.3g\n",
			cmp.Full[i].P, cmp.Full[i].Value, cmp.Approx[i].Value)
	}
}
