// Approximation pipeline: the paper's headline workflow end-to-end.
//
//  1. Simulate two clusters in full packet-level fidelity and record every
//     fabric traversal of cluster 0 (features + latency/drop labels).
//  2. Train the macro-state classifier and the two LSTM micro models.
//  3. Rebuild the network at 8 clusters with every cluster except one
//     replaced by the trained models, run the same style of workload, and
//     compare speed and accuracy against the fully simulated version.
//
// This is Figure 3 of the paper as a program.
package main

import (
	"fmt"
	"log"

	"approxsim/internal/core"
	"approxsim/internal/nn"
	"approxsim/internal/scenario"
	"approxsim/internal/trace"
)

func main() {
	// --- Step 1: full-fidelity training capture (2 clusters). ---
	trainSp := scenario.Spec{
		Mode:      "full",
		Topology:  scenario.Topology{Kind: "clos", Clusters: 2},
		Workload:  scenario.Workload{Load: 0.4},
		Seed:      7,
		HorizonMS: 6,
		Capture:   "cluster",
	}
	fmt.Println("step 1: capturing boundary traces from a 2-cluster full simulation...")
	full, err := scenario.Run(trainSp)
	if err != nil {
		log.Fatal(err)
	}
	eg, ing := trace.Split(full.Run.Records)
	fmt.Printf("  %d egress + %d ingress traversals captured (%.2fs wall)\n\n",
		len(eg), len(ing), full.Perf.WallSeconds)

	// --- Step 2: train the micro models. ---
	fmt.Println("step 2: training ingress/egress LSTM micro models...")
	models, err := core.TrainModels(full.Run.Records, trainSp.EngineConfig().TopologyConfig(), core.TrainOptions{
		Hidden: 16, Layers: 1,
		NN:   nn.TrainConfig{LR: 0.02, Batches: 300, Batch: 16, BPTT: 16, Seed: 7},
		Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  trained 2 models x %d parameters\n\n", models.Egress.NumParams())

	// --- Step 3: at-scale comparison (8 clusters, held-out seed). ---
	evalSp := scenario.Spec{
		Mode:      "full",
		Topology:  scenario.Topology{Kind: "clos", Clusters: 8},
		Workload:  scenario.Workload{Load: 0.4},
		Seed:      1007, // not the training workload
		HorizonMS: 4,
	}
	fmt.Println("step 3: running 8 clusters fully vs hybrid (7 of 8 approximated)...")
	truth, err := scenario.Run(evalSp)
	if err != nil {
		log.Fatal(err)
	}
	hySp := evalSp
	hySp.Mode = "hybrid"
	hybrid, err := scenario.Run(hySp, scenario.WithModels(models))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("  full:   %8d events  %.3fs wall  %d flows completed\n",
		truth.Perf.Events, truth.Perf.WallSeconds, truth.Metrics.Completed)
	fmt.Printf("  hybrid: %8d events  %.3fs wall  %d flows completed\n",
		hybrid.Perf.Events, hybrid.Perf.WallSeconds, hybrid.Metrics.Completed)
	fmt.Printf("  event reduction: %.2fx   wall speedup: %.2fx\n",
		float64(truth.Perf.Events)/float64(hybrid.Perf.Events),
		truth.Perf.WallSeconds/hybrid.Perf.WallSeconds)

	cmp, err := core.CompareRTT(truth.Run, hybrid.Run, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  RTT distribution divergence (KS): %.3f\n", cmp.KS)
	fmt.Println("\n  RTT CDF (seconds):")
	fmt.Println("  p       ground-truth   approx")
	for i := 0; i < len(cmp.Full) && i < len(cmp.Approx); i += 4 {
		fmt.Printf("  %.2f    %10.3g   %10.3g\n",
			cmp.Full[i].P, cmp.Full[i].Value, cmp.Approx[i].Value)
	}
}
